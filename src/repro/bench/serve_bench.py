"""The ``serve`` figures: sustained multi-tenant serving under chaos
(``serve``) and the shard storage hot path at growing retention
(``serve_hotpath``).

The batch figures grade *accuracy*; this one grades *service*: a
:class:`~repro.serve.service.JoinService` sweeps a small grid of
tenancy × chaos intensity, each cell one end-to-end run over the
plan-driven load trace (:func:`repro.faults.plan.serve_load_plan` —
rate spike, overlapping disorder burst, drought).  Rows carry the
serving layer's accounting — admitted/rejected/shed queries, virtual
QPS, p95/p99 virtual-time latency, autoscaler activity — so the CI
compare gate catches a quota leak, a shedding regression or an
autoscaler that stopped reacting just as it catches an error
regression in the batch figures.

The ingest *rate* is deliberately not scaled down with ``--scale``:
autoscaling and admission pressure only exist above a worker's
capacity, so scale shrinks the run's duration (and with it tenant
count stays the driver of query pressure).
"""

from __future__ import annotations

import numpy as np

from repro.faults.plan import serve_load_plan
from repro.joins.arrays import AggKind
from repro.serve.admission import TenantQuota
from repro.serve.service import ServeConfig, run_service
from repro.serve.shards import ShardStore

__all__ = ["serve_hotpath", "serve_sustained"]

#: (tenants, chaos intensity) grid of the figure.
_CELLS = ((24, 0.0), (24, 2.0), (96, 0.0), (96, 2.0))


def serve_sustained(scale: float = 1.0, workers: int | None = None) -> list[dict]:
    """Rows of the ``serve`` figure (one per tenancy × intensity cell).

    Args:
        scale: Fraction of the full-run duration (floored so every cell
            still spans several autoscale intervals).
        workers: Accepted for CLI uniformity and ignored — a service
            run is one shared-state event loop, not independent cells;
            rows are identical for any value, which keeps the
            serial-vs-parallel determinism gate green.
    """
    del workers  # one shared-state loop per cell; nothing to shard
    duration_ms = max(1500.0 * scale, 400.0)
    rows: list[dict] = []
    for tenants, intensity in _CELLS:
        config = ServeConfig(
            tenants=tenants,
            n_shards=4,
            num_keys=64,
            window_ms=50.0,
            omega_ms=10.0,
            duration_ms=duration_ms,
            warmup_ms=min(200.0, 0.25 * duration_ms),
            rate_per_ms=150.0,
            mean_query_interval_ms=50.0,
            quota=TenantQuota(rate_per_s=18.0, burst=3.0),
            min_workers=1,
            max_workers=6,
            autoscale_interval_ms=50.0,
            migrate_at_ms=0.5 * duration_ms,
            seed=7,
        )
        plan = serve_load_plan(intensity, 0.0, duration_ms, seed=7)
        report = run_service(config, plan if plan else None)
        rows.append({"tenants": tenants, "intensity": intensity, **report})
    return rows


#: Retention points of the ``serve_hotpath`` figure (ms).  Per-tick work
#: is constant, so any cost growth across this sweep is retained-state
#: cost — exactly what the incremental runs mode is supposed to flatten.
_HOTPATH_RETENTIONS = (400.0, 1600.0, 6400.0)
_HOTPATH_TICK_MS = 25.0
_HOTPATH_WINDOW_MS = 50.0
_HOTPATH_PER_TICK = 120
_HOTPATH_NUM_KEYS = 64


def hotpath_tick_stream(ticks: int, seed: int = 11) -> list[tuple[np.ndarray, ...]]:
    """The deterministic per-tick ingest chunks of the hotpath figure.

    One service tick's worth of arrivals each: arrival times inside the
    tick (sorted, as the service's ingest loop delivers them), gamma
    disorder on event times.  Shared by the figure rows and the timing
    benchmark so both measure the same stream.
    """
    rng = np.random.default_rng(seed)
    chunks = []
    for tick in range(ticks):
        clock = (tick + 1) * _HOTPATH_TICK_MS
        arrival = np.sort(clock - rng.uniform(0.0, _HOTPATH_TICK_MS, _HOTPATH_PER_TICK))
        event = np.maximum(arrival - rng.gamma(2.0, 8.0, _HOTPATH_PER_TICK), 0.0)
        chunks.append(
            (
                event,
                arrival,
                rng.integers(0, _HOTPATH_NUM_KEYS, _HOTPATH_PER_TICK).astype(np.int64),
                rng.uniform(0.0, 2.0, _HOTPATH_PER_TICK),
                rng.random(_HOTPATH_PER_TICK) < 0.5,
            )
        )
    return chunks


def hotpath_drive(
    mode: str, retention_ms: float, chunks: list[tuple[np.ndarray, ...]]
) -> tuple[ShardStore, list[tuple[int, int, float]]]:
    """Ingest-to-answer loop of one shard in one storage mode.

    Every tick ingests one chunk and answers a COUNT query over the
    latest closed window — the serving layer's steady-state rhythm.
    Returns the shard and the per-tick answers ``(n_r, n_s, value)``.
    """
    shard = ShardStore(
        0,
        _HOTPATH_NUM_KEYS,
        AggKind.COUNT,
        _HOTPATH_WINDOW_MS,
        retention_ms,
        rebuild=mode,
    )
    answers = []
    for tick, chunk in enumerate(chunks):
        clock = (tick + 1) * _HOTPATH_TICK_MS
        shard.ingest(*chunk)
        start = (clock // _HOTPATH_WINDOW_MS - 1) * _HOTPATH_WINDOW_MS
        if start < 0:
            continue
        ans = shard.query(start, start + _HOTPATH_WINDOW_MS, clock)
        answers.append((ans.n_r, ans.n_s, ans.value))
    return shard, answers


def serve_hotpath(scale: float = 1.0, workers: int | None = None) -> list[dict]:
    """Rows of the ``serve_hotpath`` figure (one per retention point).

    Runs the incremental (``rebuild="runs"``) and full-rebuild shard in
    lockstep over the same deterministic tick stream at each retention
    point and reports the structural accounting: run/compaction/delta
    counts for the incremental mode, rebuild counts for the reference,
    and the equality of their answers (COUNT answers are all-integer, so
    ``answers_equal`` is an exact bit-for-bit check).  Rows carry no
    wall-clock numbers — they are byte-identical across machines and
    worker counts; ``benchmarks/bench_hotpath.py`` does the timing.

    Args:
        scale: Fraction of the full tick count per retention point
            (floored so even tiny scales span several windows).
        workers: Accepted for CLI uniformity and ignored — the sweep is
            one shard ingesting sequentially; rows are identical for
            any value, which keeps the determinism gate green.
    """
    del workers  # sequential single-shard sweep; nothing to shard
    rows: list[dict] = []
    for retention_ms in _HOTPATH_RETENTIONS:
        ticks = max(int(1.5 * retention_ms / _HOTPATH_TICK_MS * scale), 40)
        chunks = hotpath_tick_stream(ticks)
        inc, inc_answers = hotpath_drive("runs", retention_ms, chunks)
        ref, ref_answers = hotpath_drive("full", retention_ms, chunks)
        rows.append(
            {
                "retention_ms": retention_ms,
                "ticks": ticks,
                "ingested": inc.ingested,
                "evicted": inc.evicted,
                "live": len(inc),
                "queries": inc.queries,
                "answers_equal": inc_answers == ref_answers,
                "evictions_equal": inc.evicted == ref.evicted,
                "count_checksum": float(sum(a[2] for a in inc_answers)),
                "runs": len(inc._runs),
                "compactions": inc._runs.compactions,
                "delta_appends": inc._grid.appends,
                "grid_windows": len(inc._grid),
                "full_rebuilds": ref.queries,  # one rebuild per dirty query
            }
        )
    return rows
