"""Plain-text table formatting for benchmark output.

The harness prints, for every figure, the same rows/series the paper
plots, so a run of ``pytest benchmarks/ --benchmark-only`` leaves a
readable record next to the timing data.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

__all__ = ["format_table", "format_value", "pivot"]


def format_value(value) -> str:
    """Human-friendly cell rendering (floats trimmed, rates suffixed)."""
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render row dictionaries as an aligned ASCII table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[format_value(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def pivot(
    rows: Iterable[Mapping],
    index: str,
    series: str,
    value: str,
) -> list[dict]:
    """Reshape rows into one row per ``index`` with a column per series.

    Mirrors how the paper plots figures: x-axis = ``index``, one line per
    ``series``, y-axis = ``value``.
    """
    table: dict[object, dict] = {}
    for row in rows:
        key = row[index]
        table.setdefault(key, {index: key})[str(row[series])] = row[value]
    return [table[k] for k in sorted(table, key=lambda v: (str(type(v)), v))]
