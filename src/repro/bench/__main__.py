"""Command-line entry point: regenerate any figure's table.

Usage::

    python -m repro.bench fig6 [--scale 0.3]
    python -m repro.bench fig9 --scale full
    python -m repro.bench fig6 --trace report.json
    python -m repro.bench all

Prints the same rows/series the corresponding paper figure plots.  With
``--trace PATH`` each figure additionally runs inside a
:mod:`repro.obs` scope and a structured JSON run report is written:
per-figure rows (workload parameters included), the raw metrics
snapshot, and the derived health summary (fast-path fallback rates,
cost-memo hit rate, degenerate-window counts, per-phase engine time).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import obs
from repro.bench.experiments import (
    fig6_end_to_end,
    fig7_q3_end_to_end,
    fig8_workload_sensitivity,
    fig9_algorithm_sensitivity,
    fig10_integrated,
    fig11_scaling,
)
from repro.bench.reporting import format_table

_FIGURES = {
    "fig6": (fig6_end_to_end, ["workload", "omega_ms", "method", "error", "p95_latency_ms"]),
    "fig7": (fig7_q3_end_to_end, ["omega_ms", "method", "error", "p95_latency_ms"]),
    "fig8": (fig8_workload_sensitivity, None),
    "fig9": (fig9_algorithm_sensitivity, None),
    "fig10": (fig10_integrated, ["dataset", "method", "error", "p95_latency_ms"]),
    "fig11": (fig11_scaling, ["threads", "method", "error", "p95_latency_ms", "throughput_ktps"]),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the tables behind the PECJ paper's figures.",
    )
    parser.add_argument(
        "figure", choices=sorted(_FIGURES) + ["all"], help="which figure to regenerate"
    )
    parser.add_argument(
        "--scale",
        default="0.3",
        help="measured stream fraction: a float, or 'full' (default 0.3)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a structured JSON run report (rows + metrics snapshot "
        "+ derived health summary) to PATH",
    )
    args = parser.parse_args(argv)
    scale = 1.0 if args.scale == "full" else float(args.scale)

    names = sorted(_FIGURES) if args.figure == "all" else [args.figure]
    report: dict = {
        "report": "repro.bench trace",
        "scale": scale,
        "figures": {},
    }
    for name in names:
        fn, columns = _FIGURES[name]
        t0 = time.time()
        with obs.scoped() as reg:
            rows = fn(scale)
        elapsed = time.time() - t0
        print(format_table(rows, columns, title=f"{name} (scale={scale:g}, {elapsed:.0f}s)"))
        print()
        snapshot = reg.snapshot()
        report["figures"][name] = {
            "elapsed_s": elapsed,
            "rows": rows,
            "metrics": snapshot,
            "summary": obs.summarize_run(snapshot),
        }

    if args.trace is not None:
        with open(args.trace, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote trace report to {args.trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
