"""Command-line entry point: regenerate any figure's table.

Usage::

    python -m repro.bench fig6 [--scale 0.3]
    python -m repro.bench fig9 --scale full
    python -m repro.bench all

Prints the same rows/series the corresponding paper figure plots.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.experiments import (
    fig6_end_to_end,
    fig7_q3_end_to_end,
    fig8_workload_sensitivity,
    fig9_algorithm_sensitivity,
    fig10_integrated,
    fig11_scaling,
)
from repro.bench.reporting import format_table

_FIGURES = {
    "fig6": (fig6_end_to_end, ["workload", "omega_ms", "method", "error", "p95_latency_ms"]),
    "fig7": (fig7_q3_end_to_end, ["omega_ms", "method", "error", "p95_latency_ms"]),
    "fig8": (fig8_workload_sensitivity, None),
    "fig9": (fig9_algorithm_sensitivity, None),
    "fig10": (fig10_integrated, ["dataset", "method", "error", "p95_latency_ms"]),
    "fig11": (fig11_scaling, ["threads", "method", "error", "p95_latency_ms", "throughput_ktps"]),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the tables behind the PECJ paper's figures.",
    )
    parser.add_argument(
        "figure", choices=sorted(_FIGURES) + ["all"], help="which figure to regenerate"
    )
    parser.add_argument(
        "--scale",
        default="0.3",
        help="measured stream fraction: a float, or 'full' (default 0.3)",
    )
    args = parser.parse_args(argv)
    scale = 1.0 if args.scale == "full" else float(args.scale)

    names = sorted(_FIGURES) if args.figure == "all" else [args.figure]
    for name in names:
        fn, columns = _FIGURES[name]
        t0 = time.time()
        rows = fn(scale)
        elapsed = time.time() - t0
        print(format_table(rows, columns, title=f"{name} (scale={scale:g}, {elapsed:.0f}s)"))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
