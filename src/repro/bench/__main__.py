"""Command-line entry point: regenerate any figure's table.

Usage::

    python -m repro.bench fig6 [--scale 0.3]
    python -m repro.bench fig9 --scale full
    python -m repro.bench fig6 --trace report.json
    python -m repro.bench fig6 --trace-events fig6_trace.json
    python -m repro.bench fig6 --workers 4
    python -m repro.bench slo --openmetrics om.txt --audit-jsonl audit.jsonl
    python -m repro.bench all
    python -m repro.bench compare baseline.json current.json

Prints the same rows/series the corresponding paper figure plots.  With
``--workers N`` the figure's independent cells are sharded across ``N``
worker processes (see :mod:`repro.bench.executor`); the row table is
byte-identical to the default serial run — ``--rows PATH`` writes the
rows as JSON so the determinism gate can diff them.  With
``--trace PATH`` each figure additionally runs inside a
:mod:`repro.obs` scope and a structured JSON run report is written:
per-figure rows (workload parameters included), the raw metrics
snapshot, and the derived health summary (fast-path fallback rates,
cost-memo hit rate, degenerate-window counts, per-phase engine time).
Worker-scoped metrics merge back into the tracing scope, so counter
totals in a parallel trace match the serial ones.

``--trace-events PATH`` records every instrumented virtual-time event
(window lifecycle spans, engine phase spans, PECJ estimator samples,
reorder-buffer releases) and writes a Chrome/Perfetto ``trace_event``
JSON — open it at https://ui.perfetto.dev.  ``--trace-jsonl PATH``
writes the same events as sorted JSONL for programmatic consumption.
Both exports are byte-identical between serial and ``--workers N`` runs.

``compare`` is the metrics regression gate: it diffs two ``--trace``
reports under per-metric tolerances and exits nonzero on regression
(see :mod:`repro.bench.compare`).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro import obs
from repro.obs import trace as obs_trace
from repro.bench.experiments import (
    chaos_resilience,
    fig6_end_to_end,
    fig7_q3_end_to_end,
    fig8_workload_sensitivity,
    fig9_algorithm_sensitivity,
    fig10_integrated,
    fig11_scaling,
    smoke_observability,
)
from repro.bench.reporting import format_table
from repro.bench.serve_bench import serve_hotpath, serve_sustained
from repro.bench.skew_bench import skew_sweep
from repro.bench.slo_bench import slo_sweep

_FIGURES = {
    "smoke": (smoke_observability, ["workload", "method", "error", "p95_latency_ms"]),
    "fig6": (fig6_end_to_end, ["workload", "omega_ms", "method", "error", "p95_latency_ms"]),
    "fig7": (fig7_q3_end_to_end, ["omega_ms", "method", "error", "p95_latency_ms"]),
    "fig8": (fig8_workload_sensitivity, None),
    "fig9": (fig9_algorithm_sensitivity, None),
    "fig10": (fig10_integrated, ["dataset", "method", "error", "p95_latency_ms"]),
    "fig11": (fig11_scaling, ["threads", "method", "error", "p95_latency_ms", "throughput_ktps"]),
    "chaos": (chaos_resilience, ["intensity", "method", "error", "p95_latency_ms"]),
    "serve": (
        serve_sustained,
        [
            "tenants", "intensity", "events", "qps", "p95_ms", "p99_ms",
            "queries_rejected", "shed_queue", "shed_starved", "peak_workers",
            "scale_ups", "scale_downs",
        ],
    ),
    "serve_hotpath": (
        serve_hotpath,
        [
            "retention_ms", "ticks", "ingested", "evicted", "live", "queries",
            "answers_equal", "runs", "compactions", "delta_appends",
        ],
    ),
    "skew": (
        skew_sweep,
        [
            "key_skew", "disorder", "method", "error", "p95_latency_ms",
            "throughput_ktps", "partition_hot_keys", "partition_promotions",
        ],
    ),
    "slo": (
        slo_sweep,
        [
            "tenants", "intensity", "tier", "latency_bad", "completeness_bad",
            "shed_bad", "rejection_bad", "rejection_budget", "fired",
            "resolved", "audit_events",
        ],
    ),
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry: run figures, print tables, write reports and trace exports."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "compare":
        from repro.bench.compare import main as compare_main

        return compare_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the tables behind the PECJ paper's figures "
        "(or 'compare' two trace reports as a regression gate).",
    )
    parser.add_argument(
        "figure", choices=sorted(_FIGURES) + ["all"], help="which figure to regenerate"
    )
    parser.add_argument(
        "--scale",
        default="0.3",
        help="measured stream fraction: a float, or 'full' (default 0.3)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="write a structured JSON run report (rows + metrics snapshot "
        "+ derived health summary) to PATH",
    )
    parser.add_argument(
        "--trace-events",
        metavar="PATH",
        default=None,
        help="record virtual-time events and write a Chrome/Perfetto "
        "trace_event JSON to PATH (open at https://ui.perfetto.dev)",
    )
    parser.add_argument(
        "--trace-jsonl",
        metavar="PATH",
        default=None,
        help="record virtual-time events and write them as sorted JSONL",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shard independent figure cells across N worker processes "
        "(default: serial; the row table is byte-identical either way)",
    )
    parser.add_argument(
        "--rows",
        metavar="PATH",
        default=None,
        help="write the raw row tables as JSON to PATH (used by the "
        "serial-vs-parallel determinism gate)",
    )
    parser.add_argument(
        "--openmetrics",
        metavar="PATH",
        default=None,
        help="(slo figure only) write the last cell's OpenMetrics "
        "exposition text to PATH",
    )
    parser.add_argument(
        "--audit-jsonl",
        metavar="PATH",
        default=None,
        help="(slo figure only) write every cell's control-plane audit "
        "log to PATH as JSONL",
    )
    args = parser.parse_args(argv)
    scale = 1.0 if args.scale == "full" else float(args.scale)
    if args.workers is not None and args.workers < 1:
        parser.error("--workers must be >= 1")

    trace_on = args.trace_events is not None or args.trace_jsonl is not None
    names = sorted(_FIGURES) if args.figure == "all" else [args.figure]
    report: dict = {
        "report": "repro.bench trace",
        "schema_version": obs.SNAPSHOT_SCHEMA_VERSION,
        "scale": scale,
        "workers": args.workers,
        "figures": {},
    }
    all_rows: dict[str, list] = {}
    with obs_trace.tracing(obs_trace.TraceRecorder(enabled=trace_on)) as rec:
        for name in names:
            fn, columns = _FIGURES[name]
            rec.set_group(name)
            kwargs = {}
            if name == "slo":
                if args.openmetrics is not None:
                    kwargs["openmetrics_path"] = args.openmetrics
                if args.audit_jsonl is not None:
                    kwargs["audit_path"] = args.audit_jsonl
            t0 = time.time()
            with obs.scoped() as reg:
                rows = fn(scale, workers=args.workers, **kwargs)
            elapsed = time.time() - t0
            all_rows[name] = rows
            print(format_table(rows, columns, title=f"{name} (scale={scale:g}, {elapsed:.0f}s)"))
            print()
            snapshot = reg.snapshot()
            report["figures"][name] = {
                "elapsed_s": elapsed,
                "rows": rows,
                "metrics": snapshot,
                "summary": obs.summarize_run(snapshot),
            }
    if trace_on:
        report["trace_summary"] = obs.summarize_trace(rec.sorted_events())

    if args.rows is not None:
        with open(args.rows, "w") as fh:
            json.dump(all_rows, fh, indent=2)
            fh.write("\n")
        print(f"wrote row tables to {args.rows}")
    if args.trace is not None:
        with open(args.trace, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
        print(f"wrote trace report to {args.trace}")
    if args.trace_events is not None:
        rec.export_chrome(args.trace_events)
        print(
            f"wrote {len(rec.events)} trace events to {args.trace_events} "
            "(open at https://ui.perfetto.dev)"
        )
    if args.trace_jsonl is not None:
        rec.export_jsonl(args.trace_jsonl)
        print(f"wrote {len(rec.events)} trace events to {args.trace_jsonl}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
