"""Workload definitions for the paper's three queries and sweeps.

Section 6.1 defines:

* **Q1** — JOIN-COUNT, ``|W| = 10ms``, ``Delta = 5ms`` (edge-of-cloud
  disorder), Stock dataset, 100 Ktuples/s per stream;
* **Q2** — Q1 with SUM aggregation;
* **Q3** — Q1 with an intricate disorder pattern and ``Delta = 1000ms``
  (intercontinental/TOR-like), latency target < 500ms.

Each spec bundles the dataset generator, delay model and timing so every
benchmark and test builds byte-identical workloads from one place.
``scale`` shrinks the stream segment for quick runs while keeping the
estimators' warm-up intact.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.joins.arrays import AggKind, BatchArrays
from repro.streams.datasets import StreamGenerator, make_dataset
from repro.streams.disorder import (
    CorrelatedDelay,
    DelayModel,
    RegimeSwitchingDelay,
    UniformDelay,
)
from repro.streams.sources import make_disordered_arrays

__all__ = ["WorkloadSpec", "q1_spec", "q2_spec", "q3_spec", "micro_spec"]


@dataclass(frozen=True)
class WorkloadSpec:
    """A fully-determined stream-join workload."""

    name: str
    dataset: StreamGenerator
    delay: DelayModel
    agg: AggKind
    window_ms: float = 10.0
    rate_r: float = 100.0  # tuples per ms (100 => 100 Ktuples/s)
    rate_s: float = 100.0
    duration_ms: float = 3000.0
    warmup_ms: float = 300.0
    seed: int = 11
    #: Default emission cutoff (paper: omega = |W| unless tuned).
    omega_ms: float = 10.0

    def scaled(self, scale: float) -> "WorkloadSpec":
        """Shrink the measured segment (warm-up is never shrunk)."""
        if scale >= 1.0:
            return self
        measured = (self.duration_ms - self.warmup_ms) * scale
        return replace(self, duration_ms=self.warmup_ms + max(measured, 10 * self.window_ms))

    def build(self) -> BatchArrays:
        """Materialise the disordered columnar batch."""
        return make_disordered_arrays(
            self.dataset, self.delay, self.duration_ms, self.rate_r, self.rate_s, self.seed
        )

    @property
    def t_start(self) -> float:
        """First window start usable by operators (history from 0)."""
        return self.window_ms

    @property
    def t_end(self) -> float:
        """End of the measured stream segment (ms)."""
        return self.duration_ms - self.window_ms

    @property
    def warmup_windows(self) -> int:
        """Leading windows excluded from metrics."""
        return int(self.warmup_ms / self.window_ms)


def q1_spec(**overrides) -> WorkloadSpec:
    """Q1: COUNT over Stock with small uniform disorder (Delta = 5ms)."""
    defaults = dict(
        name="Q1",
        dataset=make_dataset("stock"),
        delay=UniformDelay(5.0),
        agg=AggKind.COUNT,
        duration_ms=3000.0,
        warmup_ms=500.0,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


def q2_spec(**overrides) -> WorkloadSpec:
    """Q2: Q1 with SUM(R.v) aggregation."""
    return q1_spec(name="Q2", agg=AggKind.SUM, **overrides)


def q3_spec(**overrides) -> WorkloadSpec:
    """Q3: COUNT over Stock with regime-switching heavy disorder.

    ``Delta = 1000ms``; the delay distribution alternates between calm and
    congested regimes (the "intricate disorder arrival pattern"), which is
    what defeats the analytical instantiation in Section 6.5.
    """
    defaults = dict(
        name="Q3",
        dataset=make_dataset("stock"),
        delay=RegimeSwitchingDelay(
            calm_mean=150.0, congested_mean=700.0, regime_length=700.0, max_delay=1000.0
        ),
        agg=AggKind.COUNT,
        duration_ms=12000.0,
        warmup_ms=5000.0,
        omega_ms=300.0,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


def micro_spec(
    num_keys: int = 10,
    rate: float = 100.0,
    agg: AggKind = AggKind.SUM,
    delay: DelayModel | None = None,
    **overrides,
) -> WorkloadSpec:
    """Micro-benchmark workload for the sensitivity studies (Fig. 8/9c)."""
    defaults = dict(
        name=f"micro-k{num_keys}-r{rate:g}",
        dataset=make_dataset("micro", num_keys=num_keys),
        delay=delay or UniformDelay(5.0),
        agg=agg,
        rate_r=rate,
        rate_s=rate,
        duration_ms=2500.0,
        warmup_ms=500.0,
    )
    defaults.update(overrides)
    return WorkloadSpec(**defaults)


def correlated_delay_for(delta: float) -> CorrelatedDelay:
    """The Fig. 9(c) disorder: correlated congestion scaled to ``Delta``."""
    return CorrelatedDelay(
        base_mean=delta / 4.0,
        log_sigma=0.8,
        reversion=0.08,
        step_ms=50.0,
        max_delay=delta,
    )
