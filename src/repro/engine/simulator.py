"""Discrete-event simulation of a multi-threaded stream join engine.

This is the reproduction's stand-in for AllianceDB (paper Section 6.6):
a window-at-a-time parallel join engine with one lazy and three eager
algorithms —

* **PRJ** (Parallel Radix Join, *lazy*): buffers a window's tuples until
  the window is considered complete, then runs a partitioned parallel
  join across all threads;
* **SHJ** (Symmetric Hash Join, *eager*): every arriving tuple is
  dispatched to a worker that inserts it into its stream's hash table and
  probes the opposite table immediately;
* **HSJ** (Handshake Join, *eager*): tuples flow through a pipeline of
  cores — no shared state, so no cache thrashing, but each core adds a
  hop of emission latency;
* **SPJ** (SplitJoin, *eager*): a top-level splitter feeds independent
  sub-joins, trading a bit of per-tuple work for near-linear scaling.

Both assume in-order arrival: a window is complete "when the first
tuple's arrival timestamp surpasses the window's boundary", so tuples
arriving later than their window's boundary are silently missed — the
error source PECJ integration repairs.  The integrated variants
(``pecj=True``) cut off at ``omega`` and compensate via the full
:class:`repro.core.pecj.PECJoin` machinery; crucially, what PECJ can
*observe* is whatever the engine has actually processed, so PRJ
integration sees batch-quantised observations while SHJ integration sees
per-tuple ones (explaining Fig. 10's PECJ-SHJ accuracy edge), and an
overloaded eager engine feeds PECJ stale observations (explaining
Fig. 11's error inversion under heavy load).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.obs import trace
from repro.core.pecj import PECJoin
from repro.engine.cost_model import (
    EngineCostModel,
    PartitionCostLearner,
    partition_locality,
)
from repro.joins.arrays import AggKind, BatchArrays
from repro.metrics.error import bounded_window_error
from repro.metrics.latency import LatencyTracker
from repro.metrics.throughput import throughput_ktuples_per_s
from repro.streams.windows import TumblingWindows, Window

__all__ = ["ParallelJoinEngine", "EngineResult", "EngineWindowRecord"]


@dataclass(frozen=True, slots=True)
class EngineWindowRecord:
    """Outcome of one window in the engine simulation."""

    window: Window
    value: float
    expected: float
    error: float
    emit_time: float
    contributing: int


@dataclass
class EngineResult:
    """Measurements of one engine run."""

    algorithm: str
    threads: int
    records: list[EngineWindowRecord] = field(default_factory=list)
    latency: LatencyTracker = field(default_factory=LatencyTracker)
    processed_tuples: int = 0
    makespan_ms: float = 0.0
    #: Run-scoped :mod:`repro.obs` snapshot (per-phase virtual-time
    #: breakdown, degenerate-window counts, PECJ estimator health).
    metrics: dict = field(default_factory=dict)

    @property
    def mean_error(self) -> float:
        """Mean bounded window error over measured windows."""
        if not self.records:
            return 0.0
        return sum(r.error for r in self.records) / len(self.records)

    @property
    def p95_latency(self) -> float:
        """95th-percentile emission latency (ms)."""
        return self.latency.p95()

    @property
    def throughput_ktps(self) -> float:
        """Engine throughput in Ktuples/s (Fig. 11c's metric)."""
        return throughput_ktuples_per_s(self.processed_tuples, self.makespan_ms)

    def summary(self) -> dict[str, float]:
        """Headline numbers for benchmark tables."""
        return {
            "mean_error": self.mean_error,
            "p95_latency_ms": self.p95_latency,
            "throughput_ktps": self.throughput_ktps,
            "windows": float(len(self.records)),
            "negative_latency_samples": float(self.latency.negative_samples),
        }


class ParallelJoinEngine:
    """Simulated multi-threaded intra-window join engine.

    Args:
        algorithm: ``"prj"`` (lazy radix), or one of the eager dataflow
            algorithms — ``"shj"`` (symmetric hash), ``"hsj"`` (handshake
            join [37]), ``"spj"`` (SplitJoin [31]).
        threads: Worker thread count (the Fig. 11 sweep variable).
        agg: Output aggregation.
        pecj: Integrate PECJ compensation (PECJ-PRJ / PECJ-SHJ).
        pecj_backend: Estimator backend for the integrated PECJ.
        omega: Emission cutoff from window start for the PECJ variants
            (baselines always use the window boundary).
        window_length: ``|W|`` in ms.
        cost_model: Engine cost constants.
        grace_fraction: Emission-deadline slack as a fraction of the
            window length (bounds latency under overload; unprocessed
            tuples miss their window instead).
        faults: Optional :class:`~repro.faults.plan.FaultPlan`; its
            ``straggler`` events slow this engine's cost model (a lazy
            batch barrier waits for the slowest thread; eager workers
            slow individually when an event's ``mode`` names their
            index).  Stream-level events must be applied to the batch
            beforehand via :func:`repro.faults.inject.apply_faults`.
        partitioning: Key-partitioned execution mode for PRJ/SHJ.
            ``None`` (default) keeps the historical schedules untouched
            (byte-identical to every committed baseline).  ``"hash"``
            partitions by ``key % threads`` — the naive scheme a hot key
            collapses, since its whole mass lands on one thread.
            ``"skew"`` schedules key-groups largest-first onto the least
            loaded thread (LPT) using a :class:`~repro.engine.cost_model.
            PartitionCostLearner` that learns per-partition build/probe
            costs online; for eager SHJ it isolates hot keys onto
            dedicated workers so the cold tail keeps flowing.
    """

    def __init__(
        self,
        algorithm: str = "prj",
        threads: int = 8,
        agg: AggKind = AggKind.COUNT,
        pecj: bool = False,
        pecj_backend: str = "aema",
        omega: float = 10.0,
        window_length: float = 10.0,
        cost_model: EngineCostModel | None = None,
        grace_fraction: float = 0.5,
        seed: int = 0,
        faults=None,
        partitioning: str | None = None,
    ):
        if algorithm not in ("prj", "shj", "hsj", "spj"):
            raise ValueError(f"unknown engine algorithm {algorithm!r}")
        if threads < 1:
            raise ValueError("need at least one thread")
        if partitioning not in (None, "hash", "skew"):
            raise ValueError(f"unknown partitioning mode {partitioning!r}")
        if partitioning is not None and algorithm not in ("prj", "shj"):
            raise ValueError("partitioning is only modelled for prj/shj")
        self.algorithm = algorithm
        self.threads = threads
        self.agg = agg
        self.pecj_enabled = pecj
        self.pecj_backend = pecj_backend
        self.omega = omega
        self.window_length = window_length
        self.cost_model = cost_model or EngineCostModel()
        self.grace_fraction = grace_fraction
        self.seed = seed
        self.faults = faults
        self.partitioning = partitioning
        #: Online per-partition cost model (skew mode only; ``None``
        #: otherwise) — exposed so tests can check convergence.
        self.cost_learner: PartitionCostLearner | None = (
            PartitionCostLearner(
                base_ns=0.5
                * (self.cost_model.prj_build_ns + self.cost_model.prj_probe_ns)
            )
            if partitioning == "skew"
            else None
        )
        #: The integrated PECJ operator of the most recent run (None for
        #: baselines) — exposed so callers can checkpoint it mid-run.
        self.pecj_operator: PECJoin | None = None

    @property
    def name(self) -> str:
        """Display name (algorithm, PECJ-prefixed when compensating)."""
        base = self.algorithm.upper()
        if self.partitioning is not None:
            base = f"{base}/{self.partitioning}"
        return f"PECJ-{base}" if self.pecj_enabled else base

    # -- key-partitioned execution -------------------------------------------

    def _prj_partitioned_batch_ms(
        self, keys: np.ndarray
    ) -> tuple[float, dict[str, float]]:
        """One lazy batch under explicit key-partitioned execution.

        Key-groups are assigned to threads (``hash``: ``key % threads``;
        ``skew``: largest-first onto the least loaded thread, weighted by
        the :class:`~repro.engine.cost_model.PartitionCostLearner`'s
        predictions), each thread's build+probe time comes from the
        ground-truth :meth:`~repro.engine.cost_model.EngineCostModel.
        partition_work_ms`, and the batch barrier waits for the slowest
        thread — the makespan a hot key ruins under ``hash``.  Executed
        partitions feed the learner, closing the predict/observe loop.
        Returns ``(batch_ms, phase_breakdown)``.
        """
        cm = self.cost_model
        threads = self.threads
        n = len(keys)
        if n == 0:
            return 0.0, {"partition": 0.0, "build_probe": 0.0, "sync": 0.0}
        uniq, cnt = np.unique(keys, return_counts=True)
        if self.partitioning == "hash":
            part = uniq % threads
            group_tuples = np.bincount(part, weights=cnt, minlength=threads)
            group_distinct = np.bincount(part, minlength=threads)
        else:
            order = np.argsort(-cnt, kind="stable")
            group_tuples = np.zeros(threads)
            group_distinct = np.zeros(threads, dtype=np.int64)
            predicted = np.zeros(threads)
            learner = self.cost_learner
            for i in order:
                g = int(np.argmin(predicted))
                group_tuples[g] += cnt[i]
                group_distinct[g] += 1
                predicted[g] += learner.predict_ms(int(cnt[i]), 1)
        work = [
            cm.partition_work_ms(int(t), int(d))
            for t, d in zip(group_tuples, group_distinct)
        ]
        build_probe = max(work)
        if self.cost_learner is not None:
            for t, d, w in zip(group_tuples, group_distinct, work):
                if t:
                    self.cost_learner.observe(int(t), int(d), w)
        mean_work = sum(work) / threads
        if mean_work > 0.0:
            obs.gauge("engine.prj.partition.imbalance").add(build_probe / mean_work)
        base = cm.prj_phase_breakdown(n, threads)
        phases = {
            "partition": base["partition"],
            "build_probe": build_probe,
            "sync": base["sync"],
        }
        return sum(phases.values()), phases

    def _shj_assignment(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Key-partitioned worker routing for the eager engine.

        ``hash`` routes ``key % threads`` — workers own key ranges, so a
        hot key's whole stream lands on one worker and its queue (hence
        emission latency) explodes.  ``skew`` isolates keys holding at
        least a ``1 / (2 * threads)`` share onto dedicated workers (up to
        ``threads // 2``), whose single-key tables earn the
        :func:`~repro.engine.cost_model.partition_locality` discount,
        while the cold tail hashes over the remaining workers — one viral
        key can no longer starve the tail.  Returns the per-tuple worker
        assignment and the per-worker cost multiplier.
        """
        threads = self.threads
        locality = np.ones(threads)
        if self.partitioning == "hash" or threads == 1:
            return keys % threads, locality
        counts = np.bincount(keys)
        total = len(keys)
        order = np.argsort(-counts, kind="stable")
        max_hot = max(1, threads // 2)
        hot = [
            int(k)
            for k in order[:max_hot]
            if counts[k] > 0 and counts[k] * 2 * threads >= total
        ]
        cold_workers = threads - len(hot)
        if cold_workers == 0:
            hot = hot[:-1]
            cold_workers = 1
        assignment = keys % cold_workers
        for i, k in enumerate(hot):
            worker = cold_workers + i
            assignment[keys == k] = worker
            locality[worker] = partition_locality(int(counts[k]), 1)
        obs.gauge("engine.shj.hot_workers").set(float(len(hot)))
        return assignment, locality

    # -- visibility models ---------------------------------------------------

    def _prj_schedule(
        self, arrays: BatchArrays, t_end: float
    ) -> tuple[np.ndarray, dict[int, float]]:
        """Batch-quantised visibility for the lazy engine.

        Tuples become visible when the batch covering their *arrival*
        finishes its parallel join; batches run back to back on the
        shared thread pool.
        """
        wlen = self.window_length
        arrival = arrays.arrival
        # Tuples lost in transit (drop faults set arrival = inf) never
        # reach the engine: they join no batch and stay invisible forever.
        finite = np.isfinite(arrival)
        fin_arrival = arrival[finite]
        batch_idx = np.floor(fin_arrival / wlen).astype(np.int64)
        first = int(batch_idx.min()) if len(batch_idx) else 0
        last_time = max(float(fin_arrival.max()) if len(fin_arrival) else 0.0, t_end)
        last = int(math.floor(last_time / wlen)) + 1
        counts = np.bincount(batch_idx - first, minlength=last - first + 1)

        keys_sorted = bounds = None
        if self.partitioning is not None:
            # Per-batch key groups for the partitioned schedule: one
            # stable sort, then contiguous slices per batch offset.
            korder = np.argsort(batch_idx, kind="stable")
            keys_sorted = arrays.key[finite][korder]
            bounds = np.searchsorted(
                batch_idx[korder], np.arange(first, first + len(counts) + 1)
            )

        finishes: dict[int, float] = {}
        finish_prev = 0.0
        cm = self.cost_model
        tracing = trace.is_tracing()
        pool_track = f"engine.{self.name}.pool"
        for offset, n in enumerate(counts):
            w = first + offset
            trigger = (w + 1) * wlen
            part_phases = None
            if self.partitioning is None:
                batch_ms = cm.prj_batch_ms(int(n), self.threads)
            else:
                batch_ms, part_phases = self._prj_partitioned_batch_ms(
                    keys_sorted[bounds[offset] : bounds[offset + 1]]
                )
            if self.pecj_enabled:
                batch_ms += cm.prj_pecj_extra_ms(int(n), self.threads)
            start_exec = max(trigger, finish_prev)
            if self.faults is not None and n:
                # A partitioned batch join is a barrier: any straggler
                # thread active while it runs slows the whole batch.
                factor = self.faults.straggler_factor(start_exec)
                if factor > 1.0:
                    obs.counter("faults.straggler.slowed_batches").inc()
                    obs.gauge("faults.straggler.extra_ms").add(
                        batch_ms * (factor - 1.0)
                    )
                    if tracing:
                        trace.instant(
                            "fault.straggler", start_exec, cat="fault",
                            track="faults",
                            args={"batch": int(w), "factor": float(factor)},
                        )
                    batch_ms *= factor
            if n:
                phases = part_phases or cm.prj_phase_breakdown(int(n), self.threads)
                for phase, ms in phases.items():
                    obs.gauge(f"engine.prj.time_ms.{phase}").add(ms)
                if self.pecj_enabled:
                    obs.gauge("engine.prj.time_ms.observe").add(
                        cm.prj_pecj_extra_ms(int(n), self.threads)
                    )
                if tracing:
                    # One pool-occupancy span per batch join, with the cost
                    # model's phase breakdown nested inside it on the same
                    # virtual axis (partition -> build/probe -> sync).
                    trace.complete(
                        "prj.batch", start_exec, batch_ms,
                        cat="engine", track=pool_track,
                        args={"batch": int(w), "tuples": int(n)},
                    )
                    t = start_exec
                    for phase, ms in phases.items():
                        trace.complete(
                            f"prj.{phase}", t, float(ms),
                            cat="phase", track=pool_track,
                        )
                        t += float(ms)
                    if self.pecj_enabled:
                        trace.complete(
                            "prj.observe", t,
                            float(cm.prj_pecj_extra_ms(int(n), self.threads)),
                            cat="phase", track=pool_track,
                        )
            finish_prev = start_exec + batch_ms
            finishes[w] = finish_prev

        # Data availability is *trigger*-quantised: a batch's content is
        # frozen when its boundary passes (the engine buffers arrivals);
        # the join's finish time only affects emission latency.
        visible = np.full(len(arrival), np.inf)
        visible[finite] = (batch_idx + 1).astype(float) * wlen
        return visible, finishes

    def _shj_schedule(self, arrays: BatchArrays) -> np.ndarray:
        """Per-tuple visibility for the eager engine.

        Arrivals are dispatched round-robin to workers; each worker is a
        work-conserving server with the eager per-tuple cost.
        """
        from repro.joins.pipeline import completion_times

        n = len(arrays)
        visible = np.full(n, np.inf)
        # Tuples lost in transit (drop faults: arrival = inf) are never
        # dispatched — workers only serve what actually arrives.
        delivered = np.flatnonzero(np.isfinite(arrays.arrival))
        order = delivered[np.argsort(arrays.arrival[delivered], kind="stable")]
        arrivals = arrays.arrival[order]
        m = len(order)
        per_tuple = self.cost_model.eager_tuple_ms(
            self.algorithm, self.threads, self.pecj_enabled
        )
        obs.gauge(f"engine.{self.algorithm}.time_ms.probe").add(per_tuple * m)
        tracing = trace.is_tracing()
        assignment = worker_locality = None
        if self.partitioning is not None and m:
            assignment, worker_locality = self._shj_assignment(arrays.key[order])
        for worker in range(self.threads):
            if assignment is None:
                sel = np.arange(worker, m, self.threads)
                worker_cost = per_tuple
            else:
                sel = np.flatnonzero(assignment == worker)
                worker_cost = per_tuple * worker_locality[worker]
            costs = np.full(len(sel), worker_cost)
            if self.faults is not None and len(sel):
                mult = self.faults.straggler_multipliers(arrivals[sel], thread=worker)
                slowed = mult > 1.0
                if slowed.any():
                    obs.counter("faults.straggler.slowed_tuples").inc(
                        int(slowed.sum())
                    )
                    obs.gauge("faults.straggler.extra_ms").add(
                        float((costs * (mult - 1.0)).sum())
                    )
                    costs = costs * mult
            done = completion_times(arrivals[sel], costs)
            visible[order[sel]] = done
            if tracing and len(sel):
                # One busy-interval span per eager worker: first dispatch
                # to last completion, with the per-tuple service total so
                # (dur - busy_ms) reads as idle time in Perfetto.
                first_in = float(arrivals[sel][0])
                last_out = float(done[-1])
                trace.complete(
                    "worker.busy", first_in, last_out - first_in,
                    cat="engine", track=f"engine.{self.name}.t{worker}",
                    args={
                        "tuples": int(len(sel)),
                        "busy_ms": float(costs.sum()),
                    },
                )
        return visible

    # -- driver ---------------------------------------------------------------

    def run(
        self,
        arrays: BatchArrays,
        t_start: float = 0.0,
        t_end: float | None = None,
        warmup_windows: int = 0,
        resume_state: dict | None = None,
    ) -> EngineResult:
        """Simulate the engine over every full window in ``[t_start, t_end)``.

        The run executes inside its own :mod:`repro.obs` scope;
        ``result.metrics`` snapshots the per-phase virtual-time breakdown
        (partition/build-probe/sync for the lazy engine, probe for the
        eager ones, compensate for the PECJ variants), window counts and
        estimator health.  ``resume_state`` is a
        :func:`repro.core.persistence.checkpoint_operator` snapshot of a
        previous run's integrated PECJ (see :attr:`pecj_operator`),
        restored after prepare so a run over ``[t_mid, t_end)`` continues
        the interrupted one exactly.
        """
        with obs.scoped() as reg, reg.timer("engine.wall_ms"):
            result = self._run(arrays, t_start, t_end, warmup_windows, resume_state)
        result.metrics = reg.snapshot()
        return result

    def _run(
        self,
        arrays: BatchArrays,
        t_start: float,
        t_end: float | None,
        warmup_windows: int,
        resume_state: dict | None = None,
    ) -> EngineResult:
        if t_end is None:
            t_end = float(arrays.event.max()) if len(arrays) else t_start
        wlen = self.window_length

        finishes: dict[int, float] = {}
        if self.algorithm == "prj":
            visible, finishes = self._prj_schedule(arrays, t_end)
        else:
            visible = self._shj_schedule(arrays)
        arrays.completion[...] = visible
        arrays.mark_completion_dirty()

        pecj: PECJoin | None = None
        if self.pecj_enabled:
            # A lazy engine only materialises a window's tuples at batch
            # time, so its PECJ integration observes window-granular
            # statistics; the eager engine streams per-tuple observations
            # and affords sub-window buckets — the root of PECJ-SHJ's
            # accuracy edge in Fig. 10 ("promptly processes each input
            # tuple upon arrival ... rapidly detect and adapt").
            buckets = 1 if self.algorithm == "prj" else 10
            pecj = PECJoin(
                self.agg,
                backend=self.pecj_backend,
                buckets_per_window=buckets,
                seed=self.seed,
            )
            pecj.prepare(arrays, wlen, self.omega)
            if resume_state is not None:
                from repro.core.persistence import restore_operator

                restore_operator(pecj, resume_state)
                obs.counter("engine.resumed").inc()
        self.pecj_operator = pecj

        # Drain(T): when the engine has finished everything arrived by T.
        order = np.argsort(arrays.arrival, kind="stable")
        arr_sorted = arrays.arrival[order]
        vis_sorted = np.maximum.accumulate(visible[order])

        def drain(t: float) -> float:
            idx = int(np.searchsorted(arr_sorted, t, side="right"))
            return t if idx == 0 else float(vis_sorted[idx - 1])

        windows = TumblingWindows(wlen)
        first_idx = windows.window_index(t_start)
        if windows.window_at(first_idx).start < t_start:
            first_idx += 1

        result = EngineResult(algorithm=self.name, threads=self.threads)
        cm = self.cost_model
        idx = first_idx
        last_emit = t_start
        while True:
            window = windows.window_at(idx)
            if window.end > t_end:
                break
            expected = arrays.aggregate(window.start, window.end, None).value(self.agg)

            if pecj is not None and self.algorithm == "prj":
                # PECJ-PRJ: the last batch triggered by the cutoff carries
                # the data; emission waits for its parallel join.
                cutoff = window.start + self.omega
                batch = int(math.floor(cutoff / wlen)) - 1
                available = (batch + 1) * wlen
                value, extra = pecj.process_window(arrays, window, available)
                emit = max(cutoff, finishes.get(batch, available))
                emit += cm.pecj_compensate_ms + extra
                obs.gauge("engine.prj.time_ms.compensate").add(
                    cm.pecj_compensate_ms + extra
                )
                arrivals = arrays.arrivals_in_window(window.start, window.end, available)
            elif pecj is not None:
                # Eager + PECJ: compensate at the cutoff from whatever the
                # eager workers have processed by then.  Overload starves
                # the observations, degrading (not stalling) the output.
                cutoff = window.start + self.omega
                value, extra = pecj.process_window(arrays, window, cutoff)
                emit = cutoff + cm.pecj_compensate_ms + extra
                emit += cm.eager_emit_extra_ms(self.algorithm, self.threads)
                obs.gauge(f"engine.{self.algorithm}.time_ms.compensate").add(
                    cm.pecj_compensate_ms + extra
                )
                arrivals = arrays.arrivals_in_window(window.start, window.end, cutoff)
            elif self.algorithm == "prj":
                # Lazy baseline: joins whatever arrived by the boundary;
                # emission waits for the batch join (backlog included).
                value = arrays.aggregate(
                    window.start, window.end, window.end, clock="arrival"
                ).value(self.agg)
                emit = finishes.get(idx, window.end)
                sl = arrays.window_slice(window.start, window.end)
                arrivals = arrays.arrival[sl][arrays.arrival[sl] <= window.end]
            else:
                # Eager baseline: answers from everything arrived by the
                # boundary; emission waits until the workers have drained
                # those tuples (latency explodes under overload, data is
                # never shed).
                trigger = window.end
                value = arrays.aggregate(
                    window.start, window.end, trigger, clock="arrival"
                ).value(self.agg)
                emit = max(trigger, drain(trigger))
                emit += cm.eager_emit_extra_ms(self.algorithm, self.threads)
                sl = arrays.window_slice(window.start, window.end)
                arrivals = arrays.arrival[sl][arrays.arrival[sl] <= trigger]

            # Degenerate zero-oracle windows are bounded at 1 like every
            # other scoring site (runner, streaming) — one empty window
            # must not dominate Fig. 10/11 means.
            err = bounded_window_error(value, expected)
            record = EngineWindowRecord(
                window=window,
                value=value,
                expected=expected,
                error=err,
                emit_time=emit,
                contributing=len(arrivals),
            )
            warmup = idx - first_idx < warmup_windows
            if not warmup:
                result.records.append(record)
                obs.counter("engine.windows").inc()
                if len(arrivals):
                    result.latency.extend(emit - arrivals)
                result.processed_tuples += len(arrivals)
                last_emit = max(last_emit, emit)
            if trace.is_tracing():
                trace.complete(
                    "window", window.start, max(emit - window.start, 0.0),
                    cat="window", track=f"engine.{self.name}",
                    args={
                        "window_start": float(window.start),
                        "value": float(value),
                        "expected": float(expected),
                        "error": float(err),
                        "emit": float(emit),
                        "contributing": int(len(arrivals)),
                        "warmup": bool(warmup),
                    },
                )
            idx += 1

        measured_start = windows.window_at(first_idx + warmup_windows).start
        result.makespan_ms = max(last_emit - measured_start, 0.0)
        return result
