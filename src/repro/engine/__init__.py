"""Simulated multi-threaded join engine (the AllianceDB stand-in)."""

from repro.engine.cost_model import EngineCostModel
from repro.engine.simulator import EngineResult, EngineWindowRecord, ParallelJoinEngine

__all__ = [
    "EngineCostModel",
    "ParallelJoinEngine",
    "EngineResult",
    "EngineWindowRecord",
]
