"""Cost model of the simulated multi-threaded join engine.

The paper's integrated evaluation (Section 6.6) runs inside AllianceDB, a
C++ testbed on a 24-core Xeon.  Python cannot reproduce that machine's
wall-clock behaviour, so the engine is a discrete-event simulation whose
per-tuple costs are calibrated to the *relative* costs AllianceDB's study
[43] reports:

* a lazy radix join (PRJ) pays partitioning passes up front, then enjoys
  cache-friendly build/probe;
* an eager symmetric hash join (SHJ) pays more per tuple (two hash-table
  touches per arrival on shared state) and suffers cache thrashing that
  worsens with thread count — the reason "lazy approaches consistently
  outshine eager counterparts" when scaling up (Fig. 11).

All constants are nanoseconds per tuple unless noted; the simulator
converts to virtual milliseconds.  Defaults are chosen so a single thread
saturates around 1.5 Mtuples/s on PRJ — matching the regime of Fig. 11
where the 1600 Ktuples/s-per-stream workload needs several threads.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EngineCostModel", "PartitionCostLearner", "partition_locality"]

_NS_TO_MS = 1e-6

#: Locality discount of a single-key partition: a build table holding one
#: key is a cache-resident array, so build/probe run ~45% cheaper than a
#: full hash table (the PanJoin observation the skew scheduler exploits).
_HOT_LOCALITY_FLOOR = 0.55

#: Distinct-to-tuples ratio below which a partition counts as "hot"
#: (dominated by few keys) for both the truth model and the learner.
_HOT_RATIO = 0.1


def partition_locality(tuples: int, distinct: int) -> float:
    """True locality multiplier of one join partition.

    Interpolates from :data:`_HOT_LOCALITY_FLOOR` (one key: contiguous
    cache-resident build array) up to 1.0 once the distinct-to-tuples
    ratio reaches :data:`_HOT_RATIO` (ordinary hash-table behaviour).
    This is the simulator's *ground truth*; the
    :class:`PartitionCostLearner` has to learn it from observations.
    """
    if tuples <= 0:
        return 1.0
    ratio = min(distinct / tuples, _HOT_RATIO) / _HOT_RATIO
    return _HOT_LOCALITY_FLOOR + (1.0 - _HOT_LOCALITY_FLOOR) * ratio


@dataclass(frozen=True, slots=True)
class EngineCostModel:
    """Per-operation virtual costs of the engine.

    Attributes:
        prj_partition_ns: Radix partitioning cost per tuple per pass.
        prj_passes: Number of radix passes.
        prj_build_ns: Hash build cost per build-side tuple.
        prj_probe_ns: Probe cost per probe-side tuple.
        prj_sync_ms: Barrier synchronisation cost per window per join,
            growing mildly with thread count.
        shj_touch_ns: Eager per-arrival cost (insert own table + probe
            the opposite table).
        shj_thrash_per_thread: Fractional cache-thrashing penalty added
            per extra thread for the eager algorithm's shared tables.
        dispatch_ns: Cost of routing one tuple to a worker.
        pecj_observe_ns: Extra per-tuple cost of PECJ's observation
            bookkeeping when integrated.
        pecj_compensate_ms: Per-window cost of computing the compensation
            at emission.
        speedup_efficiency: Parallel efficiency exponent for the lazy
            batch join (1 = perfect scaling).
    """

    prj_partition_ns: float = 150.0
    prj_passes: int = 2
    prj_build_ns: float = 140.0
    prj_probe_ns: float = 160.0
    prj_sync_ms: float = 0.05
    shj_touch_ns: float = 2200.0
    shj_thrash_per_thread: float = 0.06
    hsj_touch_ns: float = 1400.0
    hsj_hop_ms: float = 0.35
    spj_touch_ns: float = 1700.0
    spj_thrash_per_thread: float = 0.015
    dispatch_ns: float = 30.0
    pecj_observe_ns: float = 120.0
    pecj_compensate_ms: float = 0.05
    speedup_efficiency: float = 0.92

    def prj_batch_ms(self, n_tuples: int, threads: int) -> float:
        """Virtual time for a lazy parallel join of ``n_tuples``."""
        if n_tuples <= 0:
            return 0.0
        per_tuple = (
            self.prj_partition_ns * self.prj_passes
            + 0.5 * (self.prj_build_ns + self.prj_probe_ns)
        )
        effective_threads = threads**self.speedup_efficiency
        work = n_tuples * per_tuple * _NS_TO_MS / effective_threads
        return work + self.prj_sync_ms * (1.0 + 0.04 * threads)

    def prj_phase_breakdown(
        self, n_tuples: int, threads: int
    ) -> dict[str, float]:
        """Metric-only decomposition of :meth:`prj_batch_ms` by phase.

        Returns ``{"partition": ms, "build_probe": ms, "sync": ms}`` using
        the same formulas; the sum can differ from ``prj_batch_ms`` by
        float rounding, so the simulation keeps using the lumped form and
        only the observability layer reads this.
        """
        if n_tuples <= 0:
            return {"partition": 0.0, "build_probe": 0.0, "sync": 0.0}
        effective_threads = threads**self.speedup_efficiency
        scale = n_tuples * _NS_TO_MS / effective_threads
        return {
            "partition": self.prj_partition_ns * self.prj_passes * scale,
            "build_probe": 0.5 * (self.prj_build_ns + self.prj_probe_ns) * scale,
            "sync": self.prj_sync_ms * (1.0 + 0.04 * threads),
        }

    def shj_tuple_ms(self, threads: int, with_pecj: bool) -> float:
        """Virtual time one eager worker spends per tuple."""
        thrash = 1.0 + self.shj_thrash_per_thread * max(threads - 1, 0)
        cost_ns = self.shj_touch_ns * thrash + self.dispatch_ns
        if with_pecj:
            cost_ns += self.pecj_observe_ns
        return cost_ns * _NS_TO_MS

    def eager_tuple_ms(self, algorithm: str, threads: int, with_pecj: bool) -> float:
        """Per-tuple worker time of an eager algorithm.

        * ``shj`` — shared symmetric hash tables: cheapest touch, worst
          cache thrashing as threads contend;
        * ``hsj`` — handshake join [37]: cores compare in a pipeline, no
          shared state (no thrashing) but a higher per-tuple touch;
        * ``spj`` — SplitJoin [31]: independent sub-joins with a top-level
          splitter; minimal thrashing, moderate touch.
        """
        if algorithm == "shj":
            return self.shj_tuple_ms(threads, with_pecj)
        if algorithm == "hsj":
            cost_ns = self.hsj_touch_ns + self.dispatch_ns
        elif algorithm == "spj":
            thrash = 1.0 + self.spj_thrash_per_thread * max(threads - 1, 0)
            cost_ns = self.spj_touch_ns * thrash + self.dispatch_ns
        else:
            raise ValueError(f"unknown eager algorithm {algorithm!r}")
        if with_pecj:
            cost_ns += self.pecj_observe_ns
        return cost_ns * _NS_TO_MS

    def eager_emit_extra_ms(self, algorithm: str, threads: int) -> float:
        """Constant emission latency of an eager algorithm's topology.

        The handshake pipeline adds one hop per core before a result can
        leave the chain; SHJ and SplitJoin emit directly.
        """
        if algorithm == "hsj":
            return self.hsj_hop_ms * threads
        return 0.0

    def prj_pecj_extra_ms(self, n_tuples: int, threads: int) -> float:
        """PECJ's observation overhead folded into a lazy batch."""
        if n_tuples <= 0:
            return 0.0
        effective_threads = threads**self.speedup_efficiency
        return n_tuples * self.pecj_observe_ns * _NS_TO_MS / effective_threads

    def partition_work_ms(self, tuples: int, distinct: int) -> float:
        """True single-thread build+probe time of one key-partition.

        The per-tuple cost is the PRJ build/probe average scaled by
        :func:`partition_locality` — hot (few-key) partitions run below
        the hash-table baseline.  Used by the partitioned PRJ schedule as
        ground truth and fed to the :class:`PartitionCostLearner` as its
        training signal.
        """
        if tuples <= 0:
            return 0.0
        per_tuple = 0.5 * (self.prj_build_ns + self.prj_probe_ns)
        return tuples * per_tuple * partition_locality(tuples, distinct) * _NS_TO_MS


class PartitionCostLearner:
    """Online per-partition build/probe cost model.

    The skew-aware scheduler needs to predict how long a key-partition's
    build+probe will take *before* running it, but locality effects make
    the per-tuple cost depend on key concentration.  The learner keeps
    one exponentially-decayed locality-factor estimate per regime — hot
    (distinct/tuples <= ``0.1``) and cold — updated from observed
    ``(tuples, distinct, elapsed_ms)`` triples, and predicts
    ``base_ns * factor * tuples``.  Before any observation the factor is
    1.0 (plain hash-table cost), so a cold learner degrades to the
    unpartitioned model rather than guessing.

    Args:
        base_ns: Per-tuple build+probe nanoseconds at factor 1.0.
        decay: EMA decay of the per-regime factor estimates.
    """

    def __init__(self, base_ns: float = 150.0, decay: float = 0.8):
        if base_ns <= 0:
            raise ValueError("base_ns must be positive")
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must be in (0, 1)")
        self.base_ns = base_ns
        self.decay = decay
        self._factor = {"hot": 1.0, "cold": 1.0}
        self._weight = {"hot": 0.0, "cold": 0.0}
        self.observations = 0

    @staticmethod
    def _regime(tuples: int, distinct: int) -> str:
        """Partition regime key: hot (few distinct keys) or cold."""
        if tuples <= 0:
            return "cold"
        return "hot" if distinct / tuples <= _HOT_RATIO else "cold"

    def factor(self, tuples: int, distinct: int) -> float:
        """Current locality-factor estimate for a partition's regime."""
        regime = self._regime(tuples, distinct)
        return self._factor[regime] if self._weight[regime] > 0.0 else 1.0

    def predict_ms(self, tuples: int, distinct: int) -> float:
        """Predicted single-thread build+probe time of a partition."""
        if tuples <= 0:
            return 0.0
        return tuples * self.base_ns * self.factor(tuples, distinct) * _NS_TO_MS

    def observe(self, tuples: int, distinct: int, elapsed_ms: float) -> None:
        """Absorb one executed partition's measured time."""
        if tuples <= 0 or elapsed_ms < 0.0:
            return
        regime = self._regime(tuples, distinct)
        observed = elapsed_ms / (tuples * self.base_ns * _NS_TO_MS)
        w = self._weight[regime]
        if w == 0.0:
            self._factor[regime] = observed
        else:
            self._factor[regime] = (
                self.decay * self._factor[regime] + (1.0 - self.decay) * observed
            )
        self._weight[regime] = self.decay * w + (1.0 - self.decay)
        self.observations += 1
