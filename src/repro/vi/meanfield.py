"""Mean-field CAVI for the paper's analytical model (Section 5.1).

The generative model:

* global mean ``mu_w`` with conditional prior ``mu_w | phi_w ~
  N(mu0, 1/(tau0 * phi_w))`` — ``tau0`` acts as a pseudo-observation
  count, which is why the paper's Eq. 9 posterior mean is
  ``(tau0*mu0 + n*g(X,Z)) / (tau0 + n)``;
* global precision ``phi_w ~ Gamma(a0, b0)``;
* per-observation latent distortions ``z_i ~ N(m_i, 1/lambda_z)``,
  independent of the globals (Section 5.1: "no local latent variable
  dependent on the global variable");
* observations ``x_i`` with ``z_i * x_i ~ N(mu_w, 1/phi_w)`` — the
  "reverse linear distortion" of Eq. 6.

Coordinate-ascent VI (CAVI) in the mean-field family
``q(mu) q(phi) prod_i q(z_i)`` has closed-form updates, recovering the
paper's Eq. 8–10: the posterior of ``mu_w`` is Gaussian with mean linear in
``E[z_i] * x_i`` and a credible interval governed by ``E[phi_w]``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.vi.distributions import Gamma, Gaussian

__all__ = ["DistortionModelPriors", "MeanFieldPosterior", "cavi"]

_LOG_2PI = math.log(2.0 * math.pi)


@dataclass(frozen=True, slots=True)
class DistortionModelPriors:
    """Priors of the Section 5.1 model.

    Attributes:
        mu0: Prior mean of ``mu_w``.
        tau0: Prior pseudo-count of ``mu_w`` (relative precision).
        phi_shape, phi_rate: Gamma prior on ``phi_w``.
        z_precision: Prior precision ``lambda_z`` of each distortion
            ``z_i`` about its prior mean.
    """

    mu0: float = 0.0
    tau0: float = 1.0
    phi_shape: float = 2.0
    phi_rate: float = 2.0
    z_precision: float = 25.0

    def __post_init__(self) -> None:
        if self.tau0 <= 0 or self.phi_shape <= 0 or self.phi_rate <= 0 or self.z_precision <= 0:
            raise ValueError("prior strengths must be positive")

    def phi_prior(self) -> Gamma:
        """The Gamma prior placed on the noise precision ``phi``."""
        return Gamma(self.phi_shape, self.phi_rate)


@dataclass
class MeanFieldPosterior:
    """The factored posterior after CAVI.

    ``q_mu`` and ``q_phi`` are the global factors (paper's ``U``); ``q_z``
    holds one Gaussian per observation.  ``elbo_trace`` records the ELBO
    after every full CAVI sweep so callers (and tests) can check
    convergence and monotonicity.
    """

    q_mu: Gaussian
    q_phi: Gamma
    q_z: list[Gaussian] = field(default_factory=list)
    elbo_trace: list[float] = field(default_factory=list)

    @property
    def mu_mean(self) -> float:
        """The paper's estimated value ``mu_w^bar = E[mu_w]`` (Eq. 9)."""
        return self.q_mu.mean

    def mu_credible_interval(self, quantile_z: float = 1.96) -> tuple[float, float]:
        """Credible interval of ``mu_w`` (paper Eq. 10)."""
        return self.q_mu.interval(quantile_z)

    @property
    def converged(self) -> bool:
        """Whether the last coordinate sweep moved below the tolerance."""
        return len(self.elbo_trace) >= 2 and math.isclose(
            self.elbo_trace[-1], self.elbo_trace[-2], rel_tol=0.0, abs_tol=1e-9
        )


def _expected_sq_residual(x: float, q_z: Gaussian, q_mu: Gaussian) -> float:
    """``E[(z*x - mu)^2]`` under independent ``q(z) q(mu)``."""
    ez2 = q_z.second_moment()
    return (
        x * x * ez2
        - 2.0 * x * q_z.mean * q_mu.mean
        + q_mu.second_moment()
    )


def _elbo(
    xs: Sequence[float],
    z_means: Sequence[float],
    priors: DistortionModelPriors,
    q_mu: Gaussian,
    q_phi: Gamma,
    q_z: Sequence[Gaussian],
) -> float:
    n = len(xs)
    e_phi = q_phi.mean
    e_log_phi = q_phi.mean_log()

    # E[log p(X | mu, phi, Z)]
    like = 0.0
    for x, qz in zip(xs, q_z):
        like += 0.5 * (e_log_phi - _LOG_2PI) - 0.5 * e_phi * _expected_sq_residual(x, qz, q_mu)

    # E[log p(mu | phi)] with prior N(mu0, 1/(tau0 * phi))
    sq_mu = (q_mu.mean - priors.mu0) ** 2 + q_mu.variance
    log_p_mu = 0.5 * (math.log(priors.tau0) + e_log_phi - _LOG_2PI) - 0.5 * priors.tau0 * e_phi * sq_mu

    # E[log p(phi)]
    prior_phi = priors.phi_prior()
    log_p_phi = (
        prior_phi.shape * math.log(prior_phi.rate)
        - math.lgamma(prior_phi.shape)
        + (prior_phi.shape - 1.0) * e_log_phi
        - prior_phi.rate * e_phi
    )

    # E[log p(Z)]
    log_p_z = 0.0
    for m_prior, qz in zip(z_means, q_z):
        sq_z = (qz.mean - m_prior) ** 2 + qz.variance
        log_p_z += 0.5 * (math.log(priors.z_precision) - _LOG_2PI) - 0.5 * priors.z_precision * sq_z

    entropy = q_mu.entropy() + q_phi.entropy() + sum(qz.entropy() for qz in q_z)
    return like + log_p_mu + log_p_phi + log_p_z + entropy


def cavi(
    observations: Sequence[float],
    priors: DistortionModelPriors | None = None,
    z_prior_means: Sequence[float] | None = None,
    max_iters: int = 50,
    tol: float = 1e-8,
) -> MeanFieldPosterior:
    """Run coordinate-ascent VI on the distortion model.

    Args:
        observations: The ``x_i`` values (e.g. per-interval observed rates).
        priors: Model priors; defaults centre ``mu_w`` at 0 with weight 1.
        z_prior_means: Prior mean of each ``z_i``; defaults to 1 (no
            distortion expected).  PECJ supplies here its learned
            distortion expectation per observation age.
        max_iters: Maximum full CAVI sweeps.
        tol: Absolute ELBO-improvement threshold to stop early.

    Returns:
        The factored posterior with its ELBO trace.  The ELBO is
        non-decreasing across sweeps (exact coordinate ascent).
    """
    xs = [float(x) for x in observations]
    n = len(xs)
    priors = priors or DistortionModelPriors()
    if z_prior_means is None:
        z_means = [1.0] * n
    else:
        z_means = [float(m) for m in z_prior_means]
        if len(z_means) != n:
            raise ValueError("z_prior_means length must match observations")

    q_phi = priors.phi_prior()
    q_mu = Gaussian(priors.mu0, priors.tau0 * q_phi.mean)
    q_z = [Gaussian(m, priors.z_precision) for m in z_means]

    posterior = MeanFieldPosterior(q_mu, q_phi, q_z)
    if n == 0:
        posterior.elbo_trace.append(_elbo(xs, z_means, priors, q_mu, q_phi, q_z))
        return posterior

    for _ in range(max_iters):
        e_phi = q_phi.mean

        # q(z_i): Gaussian with precision lambda_z + E[phi] x_i^2.
        q_z = [
            Gaussian(
                (priors.z_precision * m + e_phi * x * q_mu.mean)
                / (priors.z_precision + e_phi * x * x),
                priors.z_precision + e_phi * x * x,
            )
            for x, m in zip(xs, z_means)
        ]

        # q(mu): paper Eq. 9 — mean (tau0*mu0 + n*g)/(tau0 + n),
        # precision (tau0 + n) * E[phi].
        g_sum = sum(qz.mean * x for x, qz in zip(xs, q_z))
        mu_mean = (priors.tau0 * priors.mu0 + g_sum) / (priors.tau0 + n)
        q_mu = Gaussian(mu_mean, (priors.tau0 + n) * e_phi)

        # q(phi): Gamma conjugate update including the mu-prior residual.
        resid = sum(_expected_sq_residual(x, qz, q_mu) for x, qz in zip(xs, q_z))
        resid += priors.tau0 * ((q_mu.mean - priors.mu0) ** 2 + q_mu.variance)
        q_phi = Gamma(
            priors.phi_shape + 0.5 * (n + 1),
            priors.phi_rate + 0.5 * resid,
        )
        # Refresh q(mu)'s precision with the new E[phi] (it depends on phi).
        q_mu = Gaussian(q_mu.mean, (priors.tau0 + n) * q_phi.mean)

        posterior = MeanFieldPosterior(q_mu, q_phi, q_z, posterior.elbo_trace)
        posterior.elbo_trace.append(_elbo(xs, z_means, priors, q_mu, q_phi, q_z))
        if (
            len(posterior.elbo_trace) >= 2
            and abs(posterior.elbo_trace[-1] - posterior.elbo_trace[-2]) < tol
        ):
            break

    return posterior
