"""Variational-inference substrate: conjugate distributions, mean-field
CAVI for the paper's distortion model, and streaming SVI."""

from repro.vi.distributions import Gamma, Gaussian
from repro.vi.meanfield import DistortionModelPriors, MeanFieldPosterior, cavi
from repro.vi.special import digamma, gammaln
from repro.vi.svi import StreamingSVI

__all__ = [
    "Gaussian",
    "Gamma",
    "DistortionModelPriors",
    "MeanFieldPosterior",
    "cavi",
    "StreamingSVI",
    "digamma",
    "gammaln",
]
