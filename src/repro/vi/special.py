"""Special functions needed by variational inference.

Only ``digamma`` is missing from the standard library (``math.lgamma``
covers the log-gamma function), so we implement it here with the standard
recurrence + asymptotic-series approach.  Keeping this local avoids a hard
scipy dependency in the core library.
"""

from __future__ import annotations

import math

__all__ = ["digamma", "gammaln"]

#: Coefficients of the asymptotic expansion psi(x) ~ ln x - 1/(2x) - sum B_2n/(2n x^2n).
_ASYMPTOTIC = (
    1.0 / 12.0,
    -1.0 / 120.0,
    1.0 / 252.0,
    -1.0 / 240.0,
    1.0 / 132.0,
    -691.0 / 32760.0,
    1.0 / 12.0,
)


def digamma(x: float) -> float:
    """The digamma function ``psi(x) = d/dx ln Gamma(x)`` for ``x > 0``.

    Uses the recurrence ``psi(x) = psi(x + 1) - 1/x`` to push the argument
    above 6, then an asymptotic series accurate to ~1e-12 there.
    """
    if x <= 0.0:
        raise ValueError("digamma implemented for positive arguments only")
    value = 0.0
    while x < 6.0:
        value -= 1.0 / x
        x += 1.0
    inv = 1.0 / x
    inv2 = inv * inv
    series = 0.0
    power = inv2
    for coeff in _ASYMPTOTIC:
        series += coeff * power
        power *= inv2
    return value + math.log(x) - 0.5 * inv - series


def gammaln(x: float) -> float:
    """``ln Gamma(x)`` (thin wrapper over the standard library)."""
    return math.lgamma(x)
