"""The Appendix-A long-tail analytical instantiation.

The paper's appendix explores a richer analytical model that makes the
long-tail effects of stream data a first-class citizen (Eqs. 16-20):

* each local latent ``z_i`` splits into ``a_i`` (the concentration point,
  Gaussian around the global mean: ``a_i ~ N(mu_w, 1/phi_w)``) and
  ``lambda_i`` (the tail rate);
* observations are exponentially tailed above their concentration point:
  ``x_i | a_i, lambda_i ~ a_i + Exp(lambda_i)``.

The paper abandons this instantiation because its ELBO, unrolled into a
generic autograd optimizer, produces "a catastrophically complicated
tensor graph".  Coordinate ascent, however, stays tractable *for this
specific model* — every factor is conjugate once ``q(a_i)`` is recognised
as a truncated Gaussian — so we implement CAVI here both as a working
estimator for long-tailed streams and as an executable demonstration of
the appendix's key point: the posterior mean of ``mu_w`` is **no longer
linear in the observations** (contrast Eq. 19 with Eq. 9), which is
exactly what breaks the simple-filter (AEMA/EMA) implementation route.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from repro.vi.distributions import Gamma, Gaussian

__all__ = ["LongTailPriors", "LongTailPosterior", "longtail_cavi"]

_SQRT2 = math.sqrt(2.0)
_SQRT_2PI = math.sqrt(2.0 * math.pi)


def _phi(u: float) -> float:
    """Standard normal pdf."""
    return math.exp(-0.5 * u * u) / _SQRT_2PI


def _Phi(u: float) -> float:
    """Standard normal cdf."""
    return 0.5 * (1.0 + math.erf(u / _SQRT2))


def _upper_truncated_normal_mean(mean: float, sd: float, upper: float) -> float:
    """E[X | X <= upper] for X ~ N(mean, sd^2).

    Uses the standard inverse-Mills form; degenerates gracefully when the
    truncation point sits far in either tail.
    """
    beta = (upper - mean) / sd
    denom = _Phi(beta)
    if denom < 1e-12:
        # Essentially all mass beyond the bound: collapse onto it.
        return upper
    return mean - sd * _phi(beta) / denom


@dataclass(frozen=True, slots=True)
class LongTailPriors:
    """Priors of the appendix model.

    ``mu_w ~ N(mu0, 1/tau0)``; ``phi_w ~ Gamma(phi_shape, phi_rate)``;
    every tail rate ``lambda_i ~ Gamma(lam_shape, lam_rate)``.
    """

    mu0: float = 0.0
    tau0: float = 1.0
    phi_shape: float = 2.0
    phi_rate: float = 2.0
    lam_shape: float = 2.0
    lam_rate: float = 2.0

    def __post_init__(self) -> None:
        if min(self.tau0, self.phi_shape, self.phi_rate, self.lam_shape, self.lam_rate) <= 0:
            raise ValueError("prior strengths must be positive")


@dataclass
class LongTailPosterior:
    """Factored posterior of the long-tail model."""

    q_mu: Gaussian
    q_phi: Gamma
    #: Posterior means of the concentration points ``a_i``.
    a_means: list[float] = field(default_factory=list)
    #: Posterior tail rates ``E[lambda_i]``.
    lam_means: list[float] = field(default_factory=list)
    iterations: int = 0

    @property
    def mu_mean(self) -> float:
        """Posterior mean of the location parameter ``mu``."""
        return self.q_mu.mean

    def mu_credible_interval(self, quantile_z: float = 1.96) -> tuple[float, float]:
        """Central credible interval for ``mu`` at the given mass."""
        return self.q_mu.interval(quantile_z)


def longtail_cavi(
    observations: Sequence[float],
    priors: LongTailPriors | None = None,
    max_iters: int = 80,
    tol: float = 1e-9,
) -> LongTailPosterior:
    """Coordinate-ascent VI for the Appendix-A model.

    Args:
        observations: The ``x_i`` readings (long-tailed above their
            concentration points).
        priors: Model priors.
        max_iters: Maximum CAVI sweeps.
        tol: Stop when ``E[mu_w]`` moves less than this between sweeps.

    Returns:
        The factored posterior.  ``mu_mean`` estimates the level *below*
        the long tail — for delay-style data this is the typical value,
        with stragglers explained by the exponential tails rather than
        dragging the mean (what a plain Gaussian model would do).
    """
    xs = [float(x) for x in observations]
    n = len(xs)
    priors = priors or LongTailPriors()

    q_phi = Gamma(priors.phi_shape, priors.phi_rate)
    q_mu = Gaussian(priors.mu0 if n == 0 else min(xs), priors.tau0)
    lam_means = [priors.lam_shape / priors.lam_rate] * n
    a_means = list(xs)

    posterior = LongTailPosterior(q_mu, q_phi, a_means, lam_means)
    if n == 0:
        return posterior

    for it in range(max_iters):
        e_phi = q_phi.mean
        sd = 1.0 / math.sqrt(e_phi)
        mu_mean = q_mu.mean

        # q(a_i): N(mu + lambda/phi, 1/phi) truncated at a_i <= x_i
        # (the exponential tail only reaches upward).
        a_means = [
            _upper_truncated_normal_mean(mu_mean + lam / e_phi, sd, x)
            for x, lam in zip(xs, lam_means)
        ]
        # q(lambda_i): Gamma(shape+1, rate + E[x_i - a_i]).
        lam_means = [
            (priors.lam_shape + 1.0)
            / (priors.lam_rate + max(x - a, 1e-12))
            for x, a in zip(xs, a_means)
        ]
        # q(mu): conjugate Gaussian given the E[a_i].
        post_prec = priors.tau0 + n * e_phi
        post_mean = (priors.tau0 * priors.mu0 + e_phi * sum(a_means)) / post_prec
        new_q_mu = Gaussian(post_mean, post_prec)
        # q(phi): Gamma with the expected squared residuals of the a_i
        # (Eq. 20; the a-variance term is folded into a 1/phi inflation).
        resid = sum((a - post_mean) ** 2 for a in a_means) + n / post_prec
        q_phi = Gamma(priors.phi_shape + 0.5 * n, priors.phi_rate + 0.5 * resid)

        moved = abs(new_q_mu.mean - q_mu.mean)
        q_mu = new_q_mu
        posterior = LongTailPosterior(q_mu, q_phi, a_means, lam_means, it + 1)
        if moved < tol:
            break

    return posterior
