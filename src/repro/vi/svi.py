"""Streaming stochastic variational inference (SVI) for the Section 5.1 model.

Implements the Hoffman et al. [17] recipe the paper builds on: each
minibatch of observations triggers

1. a **local step** — closed-form ``q(z_i)`` for the minibatch's latent
   distortions given the current global factors;
2. a **global step** — "intermediate" global parameters computed as if the
   minibatch were the whole dataset, blended into the running parameters
   along the natural gradient with a Robbins–Monro step size
   ``rho_t = (t + delay) ** -kappa``.

Continual learning (paper Eq. 5) is supported by ``carry_over``: the
current posterior becomes the prior for subsequent data, optionally
down-weighted so the model can track drifting streams instead of freezing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.vi.distributions import Gamma, Gaussian
from repro.vi.meanfield import DistortionModelPriors, _expected_sq_residual

__all__ = ["StreamingSVI"]


@dataclass
class _GlobalState:
    """Natural-parameter view of the global factors.

    ``q(mu)`` is tracked as (pseudo-count ``tau``, weighted mean ``tau_mu``)
    so that blending in natural-parameter space is a plain convex
    combination; ``q(phi)`` is tracked by its Gamma (shape, rate).
    """

    tau: float
    tau_mu: float
    phi_shape: float
    phi_rate: float

    @property
    def mu_mean(self) -> float:
        return self.tau_mu / self.tau

    def q_phi(self) -> Gamma:
        return Gamma(self.phi_shape, self.phi_rate)

    def q_mu(self) -> Gaussian:
        return Gaussian(self.mu_mean, self.tau * self.q_phi().mean)


class StreamingSVI:
    """Online posterior tracker for one window-averaged statistic.

    Args:
        priors: Model priors (also the reset state).
        batches_per_window: Rough number of minibatches making up one
            "full dataset" view; the intermediate estimate scales the
            minibatch to this effective size (Hoffman's ``N / |B|``).
        kappa: Forgetting exponent of the step size, in (0.5, 1] for
            convergence on stationary streams.
        delay: Down-weights early iterations.
        drift_floor: Lower bound on the step size so the estimator keeps
            adapting on infinite (non-stationary) streams.
    """

    def __init__(
        self,
        priors: DistortionModelPriors | None = None,
        batches_per_window: int = 8,
        kappa: float = 0.7,
        delay: float = 4.0,
        drift_floor: float = 0.05,
    ):
        if not 0.5 < kappa <= 1.0:
            raise ValueError("kappa must lie in (0.5, 1]")
        if batches_per_window < 1:
            raise ValueError("batches_per_window must be >= 1")
        self.priors = priors or DistortionModelPriors()
        self.batches_per_window = batches_per_window
        self.kappa = kappa
        self.delay = delay
        self.drift_floor = drift_floor
        self._t = 0
        self._state = _GlobalState(
            tau=self.priors.tau0,
            tau_mu=self.priors.tau0 * self.priors.mu0,
            phi_shape=self.priors.phi_shape,
            phi_rate=self.priors.phi_rate,
        )

    # -- read side -------------------------------------------------------

    @property
    def step_count(self) -> int:
        """How many minibatches have been absorbed."""
        return self._t

    @property
    def q_mu(self) -> Gaussian:
        """Current Gaussian variational factor over ``mu``."""
        return self._state.q_mu()

    @property
    def q_phi(self) -> Gamma:
        """Current Gamma variational factor over ``phi``."""
        return self._state.q_phi()

    def estimate(self) -> float:
        """Posterior mean of ``mu_w``."""
        return self._state.mu_mean

    def credible_interval(self, quantile_z: float = 1.96) -> tuple[float, float]:
        """Symmetric credible interval per paper Eq. 10."""
        return self.q_mu.interval(quantile_z)

    # -- write side ------------------------------------------------------

    def _step_size(self) -> float:
        rho = (self._t + self.delay) ** (-self.kappa)
        return max(rho, self.drift_floor)

    def local_step(
        self, xs: Sequence[float], z_prior_means: Sequence[float]
    ) -> list[Gaussian]:
        """Closed-form ``q(z_i)`` for a minibatch given current globals."""
        e_phi = self._state.q_phi().mean
        mu_mean = self._state.mu_mean
        lam = self.priors.z_precision
        return [
            Gaussian(
                (lam * m + e_phi * x * mu_mean) / (lam + e_phi * x * x),
                lam + e_phi * x * x,
            )
            for x, m in zip(xs, z_prior_means)
        ]

    def observe_batch(
        self,
        xs: Sequence[float],
        z_prior_means: Sequence[float] | None = None,
    ) -> None:
        """Absorb one minibatch of observations.

        ``z_prior_means`` carries the caller's expected distortion per
        observation (default 1: undistorted).
        """
        xs = [float(x) for x in xs]
        if not xs:
            return
        if z_prior_means is None:
            z_prior_means = [1.0] * len(xs)
        elif len(z_prior_means) != len(xs):
            raise ValueError("z_prior_means length must match xs")

        q_z = self.local_step(xs, z_prior_means)
        scale = self.batches_per_window  # N / |B| replication factor
        n_eff = len(xs) * scale

        # Intermediate globals: the minibatch replicated to the full size.
        g_sum = scale * sum(qz.mean * x for x, qz in zip(xs, q_z))
        tau_hat = self.priors.tau0 + n_eff
        tau_mu_hat = self.priors.tau0 * self.priors.mu0 + g_sum

        q_mu_now = self._state.q_mu()
        resid = scale * sum(
            _expected_sq_residual(x, qz, q_mu_now) for x, qz in zip(xs, q_z)
        )
        phi_shape_hat = self.priors.phi_shape + 0.5 * n_eff
        phi_rate_hat = self.priors.phi_rate + 0.5 * resid

        rho = self._step_size()
        self._state = _GlobalState(
            tau=(1 - rho) * self._state.tau + rho * tau_hat,
            tau_mu=(1 - rho) * self._state.tau_mu + rho * tau_mu_hat,
            phi_shape=(1 - rho) * self._state.phi_shape + rho * phi_shape_hat,
            phi_rate=(1 - rho) * self._state.phi_rate + rho * phi_rate_hat,
        )
        self._t += 1

    def carry_over(self, forget: float = 0.5) -> None:
        """Continual-learning reset (paper Eq. 5): posterior becomes prior.

        ``forget`` in (0, 1] scales the carried pseudo-counts down so the
        next segment of the stream can move the estimate; ``forget=1``
        keeps full confidence.
        """
        if not 0.0 < forget <= 1.0:
            raise ValueError("forget must be in (0, 1]")
        self.priors = DistortionModelPriors(
            mu0=self._state.mu_mean,
            tau0=max(self._state.tau * forget, 1e-6),
            phi_shape=max(self._state.phi_shape * forget, 1e-3),
            phi_rate=max(self._state.phi_rate * forget, 1e-6),
            z_precision=self.priors.z_precision,
        )

    def elbo(self, xs: Sequence[float], z_prior_means: Sequence[float] | None = None) -> float:
        """ELBO of the current globals against a held-out minibatch.

        Useful for monitoring; not used by the update itself (updates are
        natural-gradient steps, which maximise the same objective).
        """
        from repro.vi.meanfield import _elbo

        xs = [float(x) for x in xs]
        if z_prior_means is None:
            z_prior_means = [1.0] * len(xs)
        q_z = self.local_step(xs, z_prior_means)
        return _elbo(xs, z_prior_means, self.priors, self.q_mu, self.q_phi, q_z)
