"""Variational distribution families.

The analytical instantiation (paper Section 5.1) works in the conjugate
mean-field family: Gaussians for the window-average ``mu_w`` and for each
latent distortion ``z_i``, and a Gamma for the precision ``phi_w``.  These
classes carry the handful of operations VI needs — moments, log-density,
entropy, KL divergence and conjugate updates — in (mean, precision) /
(shape, rate) parameterisations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.vi.special import digamma, gammaln

__all__ = ["Gaussian", "Gamma"]

_LOG_2PI = math.log(2.0 * math.pi)


@dataclass(frozen=True, slots=True)
class Gaussian:
    """A univariate Gaussian in (mean, precision) form.

    ``precision = 1 / variance``; the (mean, precision) form is what the
    conjugate updates of Section 5.1 manipulate directly.
    """

    mean: float
    precision: float

    def __post_init__(self) -> None:
        if self.precision <= 0.0 or not math.isfinite(self.precision):
            raise ValueError(f"precision must be positive and finite, got {self.precision}")
        if not math.isfinite(self.mean):
            raise ValueError(f"mean must be finite, got {self.mean}")

    @property
    def variance(self) -> float:
        """``1 / precision``."""
        return 1.0 / self.precision

    @property
    def std(self) -> float:
        """Standard deviation."""
        return math.sqrt(self.variance)

    def second_moment(self) -> float:
        """``E[x^2] = mean^2 + variance``."""
        return self.mean * self.mean + self.variance

    def logpdf(self, x: float) -> float:
        """Log density at ``x``."""
        return 0.5 * (math.log(self.precision) - _LOG_2PI) - 0.5 * self.precision * (
            x - self.mean
        ) ** 2

    def entropy(self) -> float:
        """Differential entropy in nats."""
        return 0.5 * (_LOG_2PI + 1.0 - math.log(self.precision))

    def kl_to(self, other: "Gaussian") -> float:
        """``KL(self || other)`` in nats."""
        var_ratio = other.precision / self.precision
        mean_term = other.precision * (self.mean - other.mean) ** 2
        return 0.5 * (var_ratio + mean_term - 1.0 - math.log(var_ratio))

    def interval(self, quantile_z: float) -> tuple[float, float]:
        """Symmetric credible interval ``mean +- z * std`` (paper Eq. 10)."""
        half = quantile_z * self.std
        return (self.mean - half, self.mean + half)

    def posterior_with_known_precision(
        self, observations: list[float] | tuple[float, ...], obs_precision: float
    ) -> "Gaussian":
        """Conjugate update for Gaussian observations of known precision.

        Treating ``self`` as the prior over the mean of a Gaussian with
        known precision ``obs_precision``, returns the exact posterior after
        seeing ``observations``.  This is the classic normal-normal update
        that Eq. 8/9 of the paper specialises.
        """
        n = len(observations)
        if n == 0:
            return self
        total = sum(observations)
        post_precision = self.precision + n * obs_precision
        post_mean = (self.precision * self.mean + obs_precision * total) / post_precision
        return Gaussian(post_mean, post_precision)


@dataclass(frozen=True, slots=True)
class Gamma:
    """A Gamma distribution in (shape, rate) form.

    Used as the conjugate prior/posterior of the precision ``phi_w``.
    """

    shape: float
    rate: float

    def __post_init__(self) -> None:
        if self.shape <= 0.0 or self.rate <= 0.0:
            raise ValueError(f"shape and rate must be positive, got ({self.shape}, {self.rate})")

    @property
    def mean(self) -> float:
        """``shape / rate``."""
        return self.shape / self.rate

    @property
    def variance(self) -> float:
        """``shape / rate**2``."""
        return self.shape / (self.rate * self.rate)

    def mean_log(self) -> float:
        """``E[log x] = digamma(shape) - log(rate)``."""
        return digamma(self.shape) - math.log(self.rate)

    def logpdf(self, x: float) -> float:
        """Log density at ``x``."""
        if x <= 0.0:
            return -math.inf
        return (
            self.shape * math.log(self.rate)
            - gammaln(self.shape)
            + (self.shape - 1.0) * math.log(x)
            - self.rate * x
        )

    def entropy(self) -> float:
        """Differential entropy in nats."""
        return (
            self.shape
            - math.log(self.rate)
            + gammaln(self.shape)
            + (1.0 - self.shape) * digamma(self.shape)
        )

    def kl_to(self, other: "Gamma") -> float:
        """``KL(self || other)`` in nats."""
        return (
            (self.shape - other.shape) * digamma(self.shape)
            - gammaln(self.shape)
            + gammaln(other.shape)
            + other.shape * (math.log(self.rate) - math.log(other.rate))
            + self.shape * (other.rate - self.rate) / self.rate
        )

    def posterior_gaussian_precision(
        self, sq_residual_sum: float, n: int
    ) -> "Gamma":
        """Conjugate update as the precision of Gaussian observations.

        Given ``n`` Gaussian observations whose (expected) squared residual
        about the mean sums to ``sq_residual_sum``, returns the updated
        Gamma posterior: shape + n/2, rate + residuals/2.
        """
        if n < 0 or sq_residual_sum < 0.0:
            raise ValueError("need non-negative counts and residuals")
        return Gamma(self.shape + 0.5 * n, self.rate + 0.5 * sq_residual_sum)
