"""LSM-style sorted-run state for the serving hot path.

:class:`~repro.serve.shards.ShardStore` used to answer every query off a
full rebuild: concatenate all retained columns, re-argsort them in the
``BatchArrays`` constructor and rebuild the prefix-aggregate grid from
scratch — O(state · log state) per shard per tick, so per-query cost
grew with retention instead of with what actually arrived.  This module
holds the replacement storage layer, shaped like PanJoin's partitioned
sub-structures: each ingest chunk becomes one immutable *event-sorted
run* (:class:`SortedRun`, a single O(chunk log chunk) sort at ingest),
runs live in a size-tiered :class:`RunStack` whose amortized compaction
merges already-sorted neighbours with a two-pointer
:func:`merge_sorted_runs` (never re-sorting sorted data), and retention
eviction advances a per-run *frontier* — expired prefixes are skipped by
slicing and a fully expired run is dropped whole, without ever touching
survivors.

The frontier makes eviction accounting exactly match the full-rebuild
reference: :meth:`RunStack.advance_horizon` returns how many tuples
newly fell behind the horizon, which is precisely the count the
reference's rebuild-time ``event >= horizon`` filter would have dropped,
so the two modes agree on ``evicted`` (and therefore ``len``) after
every query.

Counters live in :class:`~repro.serve.shards.ShardStore` (the owner of
the obs vocabulary); this module only returns the numbers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SortedRun", "RunStack", "merge_sorted_runs"]

_COLS = ("event", "arrival", "key", "payload", "is_r")


class SortedRun:
    """One immutable event-sorted run of columnar tuples.

    Attributes:
        event, arrival, key, payload, is_r: Aligned columns, sorted by
            ``event`` (stable, so equal timestamps keep ingest order).
        evict_ptr: Index of the first *live* tuple — everything before
            it has expired past the retention horizon.  Because the run
            is event-sorted, the expired set is always a prefix and
            eviction is a pointer bump, never a copy.
    """

    __slots__ = ("event", "arrival", "key", "payload", "is_r", "evict_ptr")

    def __init__(
        self,
        event: np.ndarray,
        arrival: np.ndarray,
        key: np.ndarray,
        payload: np.ndarray,
        is_r: np.ndarray,
    ):
        self.event = event
        self.arrival = arrival
        self.key = key
        self.payload = payload
        self.is_r = is_r
        self.evict_ptr = 0

    @classmethod
    def from_chunk(
        cls,
        event: np.ndarray,
        arrival: np.ndarray,
        key: np.ndarray,
        payload: np.ndarray,
        is_r: np.ndarray,
    ) -> "SortedRun":
        """Sort one ingest chunk by event time — the run's only sort."""
        order = np.argsort(event, kind="stable")
        return cls(
            event[order], arrival[order], key[order], payload[order], is_r[order]
        )

    @classmethod
    def from_sorted(
        cls,
        event: np.ndarray,
        arrival: np.ndarray,
        key: np.ndarray,
        payload: np.ndarray,
        is_r: np.ndarray,
    ) -> "SortedRun":
        """Adopt already event-sorted columns (merge and restore paths)."""
        return cls(event, arrival, key, payload, is_r)

    def __len__(self) -> int:
        return len(self.event)

    @property
    def live(self) -> int:
        """Number of unexpired tuples."""
        return len(self.event) - self.evict_ptr

    @property
    def max_event(self) -> float:
        """Largest event time in the run (``-inf`` when empty)."""
        return float(self.event[-1]) if len(self.event) else float("-inf")

    def advance_frontier(self, horizon: float) -> int:
        """Expire tuples with ``event < horizon``; newly expired count."""
        ptr = int(np.searchsorted(self.event, horizon, side="left"))
        newly = ptr - self.evict_ptr
        if newly > 0:
            self.evict_ptr = ptr
        return max(newly, 0)

    def live_columns(self) -> tuple[np.ndarray, ...]:
        """Views of the unexpired suffix of every column."""
        p = self.evict_ptr
        return (
            self.event[p:],
            self.arrival[p:],
            self.key[p:],
            self.payload[p:],
            self.is_r[p:],
        )

    def live_slice(self, lo: float, hi: float) -> slice:
        """Live index range with ``lo <= event < hi`` (for window scans)."""
        start = int(np.searchsorted(self.event, lo, side="left"))
        stop = int(np.searchsorted(self.event, hi, side="left"))
        return slice(max(start, self.evict_ptr), stop)


def merge_sorted_runs(a: SortedRun, b: SortedRun) -> SortedRun:
    """Two-pointer merge of two event-sorted runs into one.

    Only the *live* suffix of each input survives (the merge is where
    run-granular eviction reclaims memory).  Stability matches the
    full-rebuild reference's stable argsort: on equal event times, ``a``
    (the older run) precedes ``b``.  Cost is O(n + m) moves plus an
    O(m log n) searchsorted — no re-sort of already-sorted data.
    """
    ae, aa, ak, ap, ar = a.live_columns()
    be, ba, bk, bp, br = b.live_columns()
    if len(be) == 0:
        return SortedRun.from_sorted(ae, aa, ak, ap, ar)
    if len(ae) == 0:
        return SortedRun.from_sorted(be, ba, bk, bp, br)
    n = len(ae) + len(be)
    # Position of each b-tuple in the merged order: the number of
    # a-tuples at or before its event time (side="right" keeps a first
    # on ties) plus the b-tuples already placed before it.
    pos_b = np.searchsorted(ae, be, side="right") + np.arange(len(be), dtype=np.int64)
    mask_b = np.zeros(n, dtype=bool)
    mask_b[pos_b] = True
    out = []
    for col_a, col_b in ((ae, be), (aa, ba), (ak, bk), (ap, bp), (ar, br)):
        merged = np.empty(n, dtype=col_a.dtype)
        merged[mask_b] = col_b
        merged[~mask_b] = col_a
        out.append(merged)
    return SortedRun.from_sorted(*out)


class RunStack:
    """Size-tiered stack of sorted runs with amortized compaction.

    Runs are kept newest-last.  After every append the stack compacts
    while the newest run is at least as large as its predecessor (live
    sizes), merging the two.  The invariant is strictly decreasing run
    sizes oldest-to-newest, which bounds the run count at O(sqrt(n)) in
    the worst case and — for the near-uniform chunk sizes a steady
    ingest tick produces — at O(log n) by the binary-counter argument,
    with every merge at least doubling its smaller input, so total merge
    work stays O(n log n) over uniform ingest.

    Attributes:
        runs: The live runs, oldest first.
        compactions: Lifetime merge count (the owner mirrors it into
            ``serve.shard.compactions``).
    """

    def __init__(self) -> None:
        self.runs: list[SortedRun] = []
        self.compactions = 0

    def __len__(self) -> int:
        return len(self.runs)

    @property
    def total_live(self) -> int:
        """Unexpired tuples across all runs."""
        return sum(r.live for r in self.runs)

    def append(self, run: SortedRun) -> int:
        """Push a new run and compact; returns merges performed."""
        self.runs.append(run)
        merged = 0
        while len(self.runs) >= 2 and self.runs[-1].live >= self.runs[-2].live:
            b = self.runs.pop()
            a = self.runs.pop()
            self.runs.append(merge_sorted_runs(a, b))
            merged += 1
        self.compactions += merged
        return merged

    def advance_horizon(self, horizon: float) -> int:
        """Expire tuples behind ``horizon``; drop fully expired runs.

        Returns the number of *newly* expired tuples — exactly what the
        full-rebuild reference would have dropped at this point — so the
        caller can keep its ``evicted`` counter reference-identical.
        Survivor runs are never copied: partially expired runs just
        advance their frontier, fully expired ones are dropped whole.
        """
        newly = 0
        survivors: list[SortedRun] = []
        for run in self.runs:
            newly += run.advance_frontier(horizon)
            if run.live > 0:
                survivors.append(run)
        self.runs = survivors
        return newly

    def merged_columns(self) -> tuple[np.ndarray, ...]:
        """All live tuples as one event-sorted column set.

        Built by pairwise :func:`merge_sorted_runs` over the live runs —
        the checkpoint path — so a snapshot never re-sorts sorted data.
        An empty stack yields typed empty columns.
        """
        if not self.runs:
            return (
                np.empty(0),
                np.empty(0),
                np.empty(0, dtype=np.int64),
                np.empty(0),
                np.empty(0, dtype=bool),
            )
        acc = self.runs[0]
        for run in self.runs[1:]:
            acc = merge_sorted_runs(acc, run)
        return acc.live_columns()
