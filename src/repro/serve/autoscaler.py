"""Vertical autoscaling of the service's simulated worker pool.

The serving layer's capacity knob is the number of simulated eager
workers draining ingest and query work.  This module decides when to
turn it: the engine cost model (:class:`repro.engine.cost_model.
EngineCostModel`) prices the interval's work in virtual milliseconds,
utilisation is that demand over the pool's capacity, and a small
hysteresis (scale up fast, down slow) keeps the pool from flapping
around a noisy load signal — the same shape production autoscalers use
over operator performance models.

Counters/gauges:

* ``serve.autoscaler.scale_ups`` / ``serve.autoscaler.scale_downs`` —
  resize decisions taken;
* ``serve.workers.last`` — pool size after the latest decision.
"""

from __future__ import annotations

from repro import obs
from repro.engine.cost_model import EngineCostModel

__all__ = ["VerticalAutoscaler"]


class VerticalAutoscaler:
    """Utilisation-driven worker-pool sizing with hysteresis.

    Args:
        cost_model: Prices the observed work (defaults to the engine's
            calibrated model).
        min_workers: Pool floor (never scales below).
        max_workers: Pool ceiling (never scales above).
        high_util: Utilisation above this for ``up_patience``
            consecutive observations grows the pool by one.
        low_util: Utilisation below this for ``down_patience``
            consecutive observations shrinks the pool by one.
        up_patience: Consecutive hot observations before growing —
            kept short: under-provisioning costs latency immediately.
        down_patience: Consecutive cold observations before shrinking —
            kept longer: giving capacity back too eagerly causes flap.
        algorithm: Eager join algorithm whose per-tuple cost prices
            ingest work (``"shj"``/``"hsj"``/``"spj"``).
    """

    def __init__(
        self,
        cost_model: EngineCostModel | None = None,
        min_workers: int = 1,
        max_workers: int = 8,
        high_util: float = 0.75,
        low_util: float = 0.25,
        up_patience: int = 1,
        down_patience: int = 3,
        algorithm: str = "shj",
    ):
        if not 1 <= min_workers <= max_workers:
            raise ValueError("need 1 <= min_workers <= max_workers")
        if not 0.0 <= low_util < high_util:
            raise ValueError("need 0 <= low_util < high_util")
        self.cost_model = cost_model or EngineCostModel()
        self.min_workers = min_workers
        self.max_workers = max_workers
        self.high_util = high_util
        self.low_util = low_util
        self.up_patience = up_patience
        self.down_patience = down_patience
        self.algorithm = algorithm
        self.scale_ups = 0
        self.scale_downs = 0
        self.last_util = 0.0
        self._hot_streak = 0
        self._cold_streak = 0

    def demand_ms(self, tuples: int, queries: int, workers: int) -> float:
        """Virtual milliseconds of work in an interval's load.

        Ingest is priced at the eager per-tuple cost *at the current
        pool size* (cache thrashing grows with workers, exactly why
        scaling up has diminishing returns), queries at the per-window
        compensation cost.
        """
        per_tuple = self.cost_model.eager_tuple_ms(
            self.algorithm, workers, with_pecj=True
        )
        return tuples * per_tuple + queries * self.cost_model.pecj_compensate_ms

    def observe(
        self, tuples: int, queries: int, workers: int, interval_ms: float
    ) -> int:
        """Fold one interval's load into the hysteresis; returns the new size.

        Args:
            tuples: Ingest tuples processed during the interval.
            queries: Queries answered during the interval.
            workers: Current pool size.
            interval_ms: Virtual length of the interval.
        """
        capacity = workers * interval_ms
        util = self.demand_ms(tuples, queries, workers) / capacity
        self.last_util = util
        new = workers
        if util > self.high_util:
            self._hot_streak += 1
            self._cold_streak = 0
            if self._hot_streak >= self.up_patience and workers < self.max_workers:
                new = workers + 1
                self._hot_streak = 0
                self.scale_ups += 1
                obs.counter("serve.autoscaler.scale_ups").inc()
        elif util < self.low_util:
            self._cold_streak += 1
            self._hot_streak = 0
            if self._cold_streak >= self.down_patience and workers > self.min_workers:
                new = workers - 1
                self._cold_streak = 0
                self.scale_downs += 1
                obs.counter("serve.autoscaler.scale_downs").inc()
        else:
            self._hot_streak = 0
            self._cold_streak = 0
        obs.gauge("serve.workers.last").set(float(new))
        return new
