"""Key-sharded operator state for the serving layer.

Each shard owns a disjoint key range of the shared join state: appended
column buffers of both streams' tuples, a per-shard
:class:`~repro.core.delay_profile.DelayProfile` learned from the
shard's own arrivals, and (lazily) a
:class:`~repro.joins.arrays.BatchArrays` rebuilt from the buffers so
queries ride the existing prefix-aggregate grid index
(:meth:`BatchArrays.aggregator`) instead of rescanning.

Queries are answered with *PECJ-lite* compensation: the observed window
aggregate is inflated by the profile's completeness CDF — the paper's
reverse-linear ``1/c(a)`` distortion (Eq. 6) applied per sub-interval
age — using the closed forms of :func:`repro.core.compensation.
compensate` with the observed selectivity and payload mean as plug-in
posteriors.  It is deliberately the cheap instantiation: a serving
layer answering thousands of tenant queries per virtual second cannot
afford a full estimator stack per shard, and the profile is the part
that transfers across queries.

Shards checkpoint to plain JSON-compatible dicts (reusing
:func:`repro.core.persistence.profile_state`) and restore into a fresh
shard, which is what tenant migration in :mod:`repro.serve.service`
round-trips.

Counters: ``serve.shard.ingested``, ``serve.shard.rebuilds``,
``serve.shard.evicted``, ``serve.shard.queries``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro import obs
from repro.core.compensation import compensate
from repro.core.delay_profile import DelayProfile
from repro.core.persistence import profile_state, restore_profile
from repro.joins.arrays import AggKind, BatchArrays

__all__ = ["ShardAnswer", "ShardStore"]

_STATE_VERSION = 1

#: Sub-intervals a window is split into when averaging completeness —
#: matches the bucket granularity PECJ's batch operator compensates at.
_AGE_BUCKETS = 8

#: Floor on the mean completeness used to inflate observed counts; below
#: this the profile is effectively saying "almost nothing has arrived"
#: and ``1/c`` amplification becomes noise-dominated garbage.
_MIN_COMPLETENESS = 0.05


@dataclass(frozen=True, slots=True)
class ShardAnswer:
    """One shard's answer to a window query.

    Attributes:
        value: The compensated output ``O`` (equals ``observed`` when
            the profile is cold or compensation is off).
        observed: The conservative observed-only aggregate — the
            WMJ-equivalent answer, what fallback and shedding return.
        n_r: Observed R-side tuples in the window view.
        n_s: Observed S-side tuples in the window view.
        starved: Whether a side had no observed tuples at all (the
            signal the degradation controller widens or sheds on).
        completeness: The mean completeness ``c̄`` used to inflate the
            observed counts (1.0 when cold).
    """

    value: float
    observed: float
    n_r: int
    n_s: int
    starved: bool
    completeness: float


class ShardStore:
    """Operator state of one key shard.

    Ingest appends to chunked column buffers (cheap, no sorting); the
    queryable :class:`BatchArrays` is rebuilt lazily on the first query
    after new arrivals, at which point tuples older than the retention
    horizon are evicted so a long-running service holds bounded state.

    Args:
        shard_id: The shard's index (labels trace events).
        num_keys: Global key-space size (shards see a subset but the
            bincount aggregation needs the global width).
        agg: Aggregation answered by :meth:`query`.
        window_ms: Window length of the query grid.
        retention_ms: Tuples whose event time falls further than this
            behind the newest arrival are dropped on rebuild.  Must
            comfortably exceed the window length plus the widest
            availability budget or queries would silently lose history.
        profile: Delay profile to adopt (default: a fresh one).
    """

    def __init__(
        self,
        shard_id: int,
        num_keys: int,
        agg: AggKind,
        window_ms: float,
        retention_ms: float,
        profile: DelayProfile | None = None,
    ):
        if retention_ms < 2.0 * window_ms:
            raise ValueError("retention_ms must cover at least two windows")
        self.shard_id = shard_id
        self.num_keys = num_keys
        self.agg = agg
        self.window_ms = window_ms
        self.retention_ms = retention_ms
        self.profile = profile or DelayProfile()
        self._chunks: list[tuple[np.ndarray, ...]] = []
        self._arrays: BatchArrays | None = None
        self._dirty = False
        self._max_arrival = 0.0
        self.ingested = 0
        self.evicted = 0
        self.queries = 0

    def __len__(self) -> int:
        total = sum(len(c[0]) for c in self._chunks)
        if self._arrays is not None:
            total += len(self._arrays)
        return total

    # -- ingest ------------------------------------------------------------

    def ingest(
        self,
        event: np.ndarray,
        arrival: np.ndarray,
        key: np.ndarray,
        payload: np.ndarray,
        is_r: np.ndarray,
    ) -> None:
        """Absorb a batch of arrived tuples (columnar, any order).

        Delays are learned as ``max(arrival - event, 0)`` — the profile
        rejects negative delays outright, and a tuple that arrived
        early has simply arrived.
        """
        if len(event) == 0:
            return
        self._chunks.append(
            (
                np.asarray(event, dtype=float),
                np.asarray(arrival, dtype=float),
                np.asarray(key, dtype=np.int64),
                np.asarray(payload, dtype=float),
                np.asarray(is_r, dtype=bool),
            )
        )
        self.profile.update(np.maximum(np.asarray(arrival, dtype=float) - event, 0.0))
        self._max_arrival = max(self._max_arrival, float(np.max(arrival)))
        self.ingested += len(event)
        self._dirty = True
        obs.counter("serve.shard.ingested").inc(len(event))

    def _rebuild(self) -> BatchArrays:
        """Merge buffered chunks into the queryable arrays, evicting old state."""
        if not self._dirty and self._arrays is not None:
            return self._arrays
        cols: list[list[np.ndarray]] = [[], [], [], [], []]
        if self._arrays is not None:
            prior = self._arrays
            for i, col in enumerate(
                (prior.event, prior.arrival, prior.key, prior.payload, prior.is_r)
            ):
                cols[i].append(col)
        for chunk in self._chunks:
            for i, col in enumerate(chunk):
                cols[i].append(col)
        if not cols[0]:
            cols = [
                [np.empty(0)],
                [np.empty(0)],
                [np.empty(0, dtype=np.int64)],
                [np.empty(0)],
                [np.empty(0, dtype=bool)],
            ]
        event = np.concatenate(cols[0])
        keep = event >= self._max_arrival - self.retention_ms
        dropped = int(len(keep) - keep.sum())
        if dropped:
            self.evicted += dropped
            obs.counter("serve.shard.evicted").inc(dropped)
        self._arrays = BatchArrays(
            event[keep],
            np.concatenate(cols[1])[keep],
            np.concatenate(cols[2])[keep],
            np.concatenate(cols[3])[keep],
            np.concatenate(cols[4])[keep],
        )
        # Key aggregation must span the global key space even when this
        # shard happens to hold a narrow slice of it.
        self._arrays._num_keys = self.num_keys
        self._chunks.clear()
        self._dirty = False
        obs.counter("serve.shard.rebuilds").inc()
        return self._arrays

    # -- queries -----------------------------------------------------------

    def query(
        self, start: float, end: float, available_by: float, compensate_output: bool = True
    ) -> ShardAnswer:
        """Answer a window join query over the shard's observed state.

        Args:
            start, end: Window bounds in event time (grid-aligned
                windows ride the cached prefix-aggregate index; off-grid
                ranges fall back to a scan).
            available_by: Virtual time bounding which arrivals the
                answer may see (the query's availability budget,
                widening included).
            compensate_output: Inflate the observed aggregate by the
                delay profile's completeness (False answers
                observed-only — the fallback path).
        """
        arrays = self._rebuild()
        self.queries += 1
        obs.counter("serve.shard.queries").inc()
        if len(arrays) == 0:
            return ShardAnswer(0.0, 0.0, 0, 0, True, 1.0)
        aggregator = arrays.aggregator(end - start)
        observed_agg = aggregator.try_at(start, end, available_by, clock="arrival")
        if observed_agg is None:
            observed_agg = arrays.aggregate(start, end, available_by, clock="arrival")
        observed = observed_agg.value(self.agg)
        starved = observed_agg.n_r == 0 or observed_agg.n_s == 0
        if not compensate_output or not self.profile.is_warm or starved:
            return ShardAnswer(
                observed, observed, observed_agg.n_r, observed_agg.n_s, starved, 1.0
            )
        mids = start + (np.arange(_AGE_BUCKETS) + 0.5) * (end - start) / _AGE_BUCKETS
        ages = available_by - mids
        c_bar = float(np.mean(np.clip(self.profile.completeness_many(ages), 0.0, 1.0)))
        c_bar = max(c_bar, _MIN_COMPLETENESS)
        estimate = compensate(
            self.agg,
            observed_agg.n_r / c_bar,
            observed_agg.n_s / c_bar,
            observed_agg.selectivity,
            observed_agg.alpha_r,
        )
        return ShardAnswer(
            estimate.value,
            observed,
            observed_agg.n_r,
            observed_agg.n_s,
            starved,
            c_bar,
        )

    # -- checkpoint / migration --------------------------------------------

    def checkpoint(self) -> dict[str, Any]:
        """Snapshot the shard as a JSON-compatible dict.

        The snapshot captures the post-eviction merged columns (so a
        restored shard answers queries identically), the learned delay
        profile, and the lifetime counters — everything a successor
        needs to take over the shard mid-run.
        """
        arrays = self._rebuild()
        return {
            "version": _STATE_VERSION,
            "shard_id": self.shard_id,
            "num_keys": self.num_keys,
            "agg": self.agg.value,
            "window_ms": self.window_ms,
            "retention_ms": self.retention_ms,
            "max_arrival": self._max_arrival,
            "ingested": self.ingested,
            "evicted": self.evicted,
            "columns": {
                "event": arrays.event.tolist(),
                "arrival": arrays.arrival.tolist(),
                "key": arrays.key.tolist(),
                "payload": arrays.payload.tolist(),
                "is_r": arrays.is_r.tolist(),
            },
            "profile": profile_state(self.profile),
        }

    @classmethod
    def restore(cls, state: dict[str, Any]) -> "ShardStore":
        """Rebuild a shard from a :meth:`checkpoint` snapshot."""
        if state.get("version") != _STATE_VERSION:
            raise ValueError(f"unsupported shard snapshot version {state.get('version')!r}")
        shard = cls(
            shard_id=int(state["shard_id"]),
            num_keys=int(state["num_keys"]),
            agg=AggKind(state["agg"]),
            window_ms=float(state["window_ms"]),
            retention_ms=float(state["retention_ms"]),
        )
        cols = state["columns"]
        if cols["event"]:
            shard._chunks.append(
                (
                    np.asarray(cols["event"], dtype=float),
                    np.asarray(cols["arrival"], dtype=float),
                    np.asarray(cols["key"], dtype=np.int64),
                    np.asarray(cols["payload"], dtype=float),
                    np.asarray(cols["is_r"], dtype=bool),
                )
            )
            shard._dirty = True
        restore_profile(shard.profile, state["profile"])
        shard._max_arrival = float(state["max_arrival"])
        shard.ingested = int(state["ingested"])
        shard.evicted = int(state["evicted"])
        return shard
