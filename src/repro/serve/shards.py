"""Key-sharded operator state for the serving layer.

Each shard owns a disjoint key range of the shared join state.  Two
storage modes answer the same queries:

* ``rebuild="runs"`` (default, the hot path): every ingest chunk becomes
  an event-sorted :class:`~repro.serve.runs.SortedRun` (one
  O(chunk log chunk) sort at ingest) stacked in a size-tiered
  :class:`~repro.serve.runs.RunStack` with amortized two-pointer
  compaction, while a mergeable
  :class:`~repro.joins.aggregator.DeltaGrid` extends per-window prefix
  aggregates in O(new tuples + touched windows) per chunk.  A query is
  a binary search into the window's prefix state; retention eviction
  advances per-run frontiers and drops whole expired runs — the shard
  never re-sorts or re-aggregates data it has already absorbed.
* ``rebuild="full"`` (the reference): concatenate all retained columns,
  re-argsort them in the ``BatchArrays`` constructor and rebuild the
  prefix-aggregate grid from scratch on the first query after new
  arrivals — O(state · log state) per touched tick.  Kept as the
  equivalence oracle: ``tests/serve/test_shards_incremental.py`` pins
  incremental answers exactly equal to this mode across randomized
  ingest/query/evict/checkpoint/migrate interleavings, and
  ``benchmarks/bench_hotpath.py`` gates the speedup.

Both modes agree bit for bit on integer accounting (``n_r``/``n_s``/
match counts — and therefore on every COUNT answer and on ``evicted``/
``len``); float payload sums agree to summation-order rounding
(~1 ulp per addend), the same caveat the batch aggregator carries.

Queries are answered with *PECJ-lite* compensation: the observed window
aggregate is inflated by the profile's completeness CDF — the paper's
reverse-linear ``1/c(a)`` distortion (Eq. 6) applied per sub-interval
age — using the closed forms of :func:`repro.core.compensation.
compensate` with the observed selectivity and payload mean as plug-in
posteriors.  It is deliberately the cheap instantiation: a serving
layer answering thousands of tenant queries per virtual second cannot
afford a full estimator stack per shard, and the profile is the part
that transfers across queries.

Shards checkpoint to plain JSON-compatible dicts (reusing
:func:`repro.core.persistence.profile_state`) with columns packed as
base64 little-endian arrays (snapshot schema v2; the v1 ``.tolist()``
format restores transparently), which is what tenant migration in
:mod:`repro.serve.service` round-trips.

Counters: ``serve.shard.ingested``, ``serve.shard.evicted``,
``serve.shard.queries``, ``serve.shard.rebuilds`` (full mode only),
``serve.shard.compactions``, ``serve.shard.delta_appends``,
``serve.shard.grid_rebuilds``, ``serve.shard.scan_fallbacks``.
Gauge: ``serve.shard.runs``.  Histogram: ``serve.shard.ckpt_bytes``.
"""

from __future__ import annotations

import base64
import json
import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro import obs
from repro.core.compensation import compensate
from repro.core.delay_profile import DelayProfile
from repro.core.persistence import profile_state, restore_profile
from repro.joins.aggregator import DeltaAppendError, DeltaGrid
from repro.joins.arrays import AggKind, BatchArrays, WindowAggregate
from repro.serve.runs import RunStack, SortedRun

__all__ = ["ShardAnswer", "ShardStore"]

_STATE_VERSION = 2

#: Snapshot versions :meth:`ShardStore.restore` understands.  Version 1
#: is the pre-runs ``.tolist()`` column format.
_KNOWN_STATE_VERSIONS = frozenset({1, _STATE_VERSION})

#: Column dtypes of a v2 snapshot, little-endian for portability.
_COLUMN_DTYPES = {
    "event": "<f8",
    "arrival": "<f8",
    "key": "<i8",
    "payload": "<f8",
    "is_r": "|b1",
}

#: Sub-intervals a window is split into when averaging completeness —
#: matches the bucket granularity PECJ's batch operator compensates at.
_AGE_BUCKETS = 8

#: Floor on the mean completeness used to inflate observed counts; below
#: this the profile is effectively saying "almost nothing has arrived"
#: and ``1/c`` amplification becomes noise-dominated garbage.
_MIN_COMPLETENESS = 0.05

_EMPTY_AGG = WindowAggregate(0, 0, 0.0, 0.0)


def _encode_column(values: np.ndarray, dtype: str) -> str:
    """Pack one column as base64 little-endian bytes (JSON-safe)."""
    return base64.b64encode(
        np.ascontiguousarray(values, dtype=dtype).tobytes()
    ).decode("ascii")


def _decode_column(data: str, dtype: str) -> np.ndarray:
    """Invert :func:`_encode_column` into an owned, writable array."""
    return np.frombuffer(base64.b64decode(data), dtype=dtype).copy()


@dataclass(frozen=True, slots=True)
class ShardAnswer:
    """One shard's answer to a window query.

    Attributes:
        value: The compensated output ``O`` (equals ``observed`` when
            the profile is cold or compensation is off).
        observed: The conservative observed-only aggregate — the
            WMJ-equivalent answer, what fallback and shedding return.
        n_r: Observed R-side tuples in the window view.
        n_s: Observed S-side tuples in the window view.
        starved: Whether a side had no observed tuples at all (the
            signal the degradation controller widens or sheds on).
        completeness: The mean completeness ``c̄`` used to inflate the
            observed counts (1.0 when cold).
    """

    value: float
    observed: float
    n_r: int
    n_s: int
    starved: bool
    completeness: float


_EMPTY_ANSWER = ShardAnswer(0.0, 0.0, 0, 0, True, 1.0)


class ShardStore:
    """Operator state of one key shard.

    Args:
        shard_id: The shard's index (labels trace events).
        num_keys: Global key-space size (shards see a subset but the
            bincount aggregation needs the global width); ingested keys
            must lie in ``[0, num_keys)``.
        agg: Aggregation answered by :meth:`query`.
        window_ms: Window length of the query grid.
        retention_ms: Tuples whose event time falls further than this
            behind the newest arrival are dropped (run-granular in
            incremental mode, on rebuild in full mode).  Must
            comfortably exceed the window length plus the widest
            availability budget or queries would silently lose history.
        profile: Delay profile to adopt (default: a fresh one).
        rebuild: ``"runs"`` for the incremental sorted-run state
            (default), ``"full"`` for the full-rebuild reference mode.
    """

    def __init__(
        self,
        shard_id: int,
        num_keys: int,
        agg: AggKind,
        window_ms: float,
        retention_ms: float,
        profile: DelayProfile | None = None,
        rebuild: str = "runs",
    ):
        if retention_ms < 2.0 * window_ms:
            raise ValueError("retention_ms must cover at least two windows")
        if rebuild not in ("runs", "full"):
            raise ValueError(f"unknown rebuild mode {rebuild!r}")
        self.shard_id = shard_id
        self.num_keys = num_keys
        self.agg = agg
        self.window_ms = window_ms
        self.retention_ms = retention_ms
        self.profile = profile or DelayProfile()
        self.rebuild = rebuild
        # Full-rebuild reference state.
        self._chunks: list[tuple[np.ndarray, ...]] = []
        self._arrays: BatchArrays | None = None
        self._dirty = False
        # Incremental sorted-run state.
        self._runs = RunStack()
        self._grid = DeltaGrid(num_keys, window_ms)
        self._grid_dirty = False
        self._max_arrival = 0.0
        self.ingested = 0
        self.evicted = 0
        self.queries = 0

    def __len__(self) -> int:
        """Live tuples (lifetime ingested minus lifetime evicted), O(1)."""
        return self.ingested - self.evicted

    # -- ingest ------------------------------------------------------------

    def ingest(
        self,
        event: np.ndarray,
        arrival: np.ndarray,
        key: np.ndarray,
        payload: np.ndarray,
        is_r: np.ndarray,
    ) -> None:
        """Absorb a batch of arrived tuples (columnar, any order).

        Delays are learned as ``max(arrival - event, 0)`` — the profile
        rejects negative delays outright, and a tuple that arrived
        early has simply arrived.  Keys outside ``[0, num_keys)`` are
        rejected before any state is touched.
        """
        if len(event) == 0:
            return
        event = np.asarray(event, dtype=float)
        arrival = np.asarray(arrival, dtype=float)
        key = np.asarray(key, dtype=np.int64)
        payload = np.asarray(payload, dtype=float)
        is_r = np.asarray(is_r, dtype=bool)
        if int(key.min()) < 0 or int(key.max()) >= self.num_keys:
            raise ValueError(
                f"shard {self.shard_id}: keys must lie in [0, {self.num_keys}), "
                f"got [{int(key.min())}, {int(key.max())}]"
            )
        if self.rebuild == "full":
            self._chunks.append((event, arrival, key, payload, is_r))
            self._dirty = True
        else:
            run = SortedRun.from_chunk(event, arrival, key, payload, is_r)
            merges = self._runs.append(run)
            if merges:
                obs.counter("serve.shard.compactions").inc(merges)
            if not self._grid_dirty:
                try:
                    self._grid.delta_append(
                        run.event, run.arrival, run.key, run.payload, run.is_r
                    )
                    obs.counter("serve.shard.delta_appends").inc()
                except DeltaAppendError:
                    # Out-of-order arrivals (never the service's tick
                    # path): rebuild the grid lazily from the runs.
                    self._grid_dirty = True
            obs.gauge("serve.shard.runs").set(float(len(self._runs)))
        self.profile.update(np.maximum(arrival - event, 0.0))
        self._max_arrival = max(self._max_arrival, float(np.max(arrival)))
        self.ingested += len(event)
        obs.counter("serve.shard.ingested").inc(len(event))

    # -- full-rebuild reference path ---------------------------------------

    def _rebuild(self) -> BatchArrays:
        """Merge buffered chunks into the queryable arrays, evicting old state."""
        if not self._dirty and self._arrays is not None:
            return self._arrays
        cols: list[list[np.ndarray]] = [[], [], [], [], []]
        if self._arrays is not None:
            prior = self._arrays
            for i, col in enumerate(
                (prior.event, prior.arrival, prior.key, prior.payload, prior.is_r)
            ):
                cols[i].append(col)
        for chunk in self._chunks:
            for i, col in enumerate(chunk):
                cols[i].append(col)
        if not cols[0]:
            cols = [
                [np.empty(0)],
                [np.empty(0)],
                [np.empty(0, dtype=np.int64)],
                [np.empty(0)],
                [np.empty(0, dtype=bool)],
            ]
        event = np.concatenate(cols[0])
        keep = event >= self._max_arrival - self.retention_ms
        dropped = int(len(keep) - keep.sum())
        if dropped:
            self.evicted += dropped
            obs.counter("serve.shard.evicted").inc(dropped)
        self._arrays = BatchArrays(
            event[keep],
            np.concatenate(cols[1])[keep],
            np.concatenate(cols[2])[keep],
            np.concatenate(cols[3])[keep],
            np.concatenate(cols[4])[keep],
        )
        # Key aggregation must span the global key space even when this
        # shard happens to hold a narrow slice of it.
        self._arrays._num_keys = self.num_keys
        self._chunks.clear()
        self._dirty = False
        obs.counter("serve.shard.rebuilds").inc()
        return self._arrays

    # -- incremental sorted-run path ---------------------------------------

    @property
    def horizon(self) -> float:
        """Retention cutoff: events older than this are (to be) evicted."""
        return self._max_arrival - self.retention_ms

    def _advance_horizon(self) -> float:
        """Expire state behind the horizon; reference-identical counting.

        Newly expired tuples are exactly those the reference's
        rebuild-time ``event >= horizon`` filter would drop now, so the
        ``evicted`` counter (and ``len``) agree across modes after
        every query.  Run eviction is frontier bumps + whole-run drops;
        grid windows fully behind the horizon release their state in
        one dict deletion (with one window of float-fuzz slack — the
        query path re-checks ``start >= horizon`` regardless).
        """
        horizon = self.horizon
        newly = self._runs.advance_horizon(horizon)
        if newly:
            self.evicted += newly
            obs.counter("serve.shard.evicted").inc(newly)
            obs.gauge("serve.shard.runs").set(float(len(self._runs)))
        self._grid.drop_below(
            math.floor((horizon - self._grid.origin) / self._grid.length) - 1
        )
        return horizon

    def _ensure_grid(self) -> DeltaGrid:
        """The delta grid, rebuilt from the runs after disorder."""
        if self._grid_dirty:
            self._grid = DeltaGrid(self.num_keys, self.window_ms)
            cols = self._runs.merged_columns()
            if len(cols[0]):
                self._grid.delta_append(*cols)
            self._grid_dirty = False
            obs.counter("serve.shard.grid_rebuilds").inc()
        return self._grid

    def _scan(
        self, start: float, end: float, available_by: float | None, horizon: float
    ) -> WindowAggregate:
        """Reference-exact rescan over the live runs (the slow path).

        Used for off-grid windows and for the single window straddling
        the retention horizon, where the grid's prefix state would
        include tuples the reference has already evicted.
        """
        num_keys = self.num_keys
        c_r = np.zeros(num_keys, dtype=np.int64)
        c_s = np.zeros(num_keys, dtype=np.int64)
        sum_rv = np.zeros(num_keys)
        n_r = 0
        n_s = 0
        lo_bound = max(start, horizon)
        for run in self._runs.runs:
            sl = run.live_slice(lo_bound, end)
            if sl.stop <= sl.start:
                continue
            k = run.key[sl]
            r = run.is_r[sl]
            p = run.payload[sl]
            if available_by is not None:
                avail = run.arrival[sl] <= available_by
                k = k[avail]
                r = r[avail]
                p = p[avail]
            if len(k) == 0:
                continue
            n_r += int(r.sum())
            n_s += int(len(k) - r.sum())
            c_r += np.bincount(k[r], minlength=num_keys)
            c_s += np.bincount(k[~r], minlength=num_keys)
            sum_rv += np.bincount(k[r], weights=p[r], minlength=num_keys)
        if n_r == 0 or n_s == 0:
            return WindowAggregate(n_r, n_s, 0.0, 0.0)
        return WindowAggregate(n_r, n_s, float(c_r @ c_s), float(sum_rv @ c_s))

    def _query_runs(
        self, start: float, end: float, available_by: float | None, horizon: float
    ) -> WindowAggregate:
        """Observed aggregate of ``[start, end)`` off the run structure."""
        grid = self._ensure_grid()
        if grid.covers(start, end) and start >= horizon:
            return grid.query(grid.window_index(start), available_by)
        obs.counter("serve.shard.scan_fallbacks").inc()
        return self._scan(start, end, available_by, horizon)

    # -- queries -----------------------------------------------------------

    def query(
        self, start: float, end: float, available_by: float, compensate_output: bool = True
    ) -> ShardAnswer:
        """Answer a window join query over the shard's observed state.

        Args:
            start, end: Window bounds in event time (grid-aligned
                windows ride the cached prefix-aggregate index; off-grid
                ranges fall back to a scan).
            available_by: Virtual time bounding which arrivals the
                answer may see (the query's availability budget,
                widening included).
            compensate_output: Inflate the observed aggregate by the
                delay profile's completeness (False answers
                observed-only — the fallback path).
        """
        self.queries += 1
        obs.counter("serve.shard.queries").inc()
        if self.rebuild == "full":
            arrays = self._rebuild()
            if len(arrays) == 0:
                return _EMPTY_ANSWER
            aggregator = arrays.aggregator(end - start)
            observed_agg = aggregator.try_at(start, end, available_by, clock="arrival")
            if observed_agg is None:
                observed_agg = arrays.aggregate(
                    start, end, available_by, clock="arrival"
                )
        else:
            horizon = self._advance_horizon()
            if len(self) == 0:
                return _EMPTY_ANSWER
            observed_agg = self._query_runs(start, end, available_by, horizon)
        observed = observed_agg.value(self.agg)
        starved = observed_agg.n_r == 0 or observed_agg.n_s == 0
        if not compensate_output or not self.profile.is_warm or starved:
            return ShardAnswer(
                observed, observed, observed_agg.n_r, observed_agg.n_s, starved, 1.0
            )
        mids = start + (np.arange(_AGE_BUCKETS) + 0.5) * (end - start) / _AGE_BUCKETS
        ages = available_by - mids
        c_bar = float(np.mean(np.clip(self.profile.completeness_many(ages), 0.0, 1.0)))
        if not math.isfinite(c_bar):
            # A poisoned delay profile (forced estimator divergence)
            # propagates NaN through completeness_many; max() below
            # would pass it straight into compensate().  Surface a NaN
            # answer instead so the DegradationController's non-finite
            # check trips its hard-fallback path.
            obs.counter("serve.shard.nonfinite_completeness").inc()
            return ShardAnswer(
                float("nan"),
                observed,
                observed_agg.n_r,
                observed_agg.n_s,
                starved,
                float("nan"),
            )
        c_bar = max(c_bar, _MIN_COMPLETENESS)
        estimate = compensate(
            self.agg,
            observed_agg.n_r / c_bar,
            observed_agg.n_s / c_bar,
            observed_agg.selectivity,
            observed_agg.alpha_r,
        )
        return ShardAnswer(
            estimate.value,
            observed,
            observed_agg.n_r,
            observed_agg.n_s,
            starved,
            c_bar,
        )

    # -- checkpoint / migration --------------------------------------------

    def checkpoint(self) -> dict[str, Any]:
        """Snapshot the shard as a JSON-compatible dict (schema v2).

        The snapshot captures the post-eviction merged columns (so a
        restored shard answers queries identically), the learned delay
        profile, and the lifetime counters — ``ingested``, ``evicted``
        *and* ``queries``, so a migrated shard's accounting identities
        keep holding — everything a successor needs to take over the
        shard mid-run.  Columns are packed as base64 little-endian
        arrays; the serialized size lands in the
        ``serve.shard.ckpt_bytes`` histogram.  In incremental mode the
        columns come from a two-pointer merge of the live runs — no
        re-sort — and the run structure itself is *not* serialized: a
        restore adopts the merged columns as one run, which compaction
        then grows normally.
        """
        if self.rebuild == "full":
            arrays = self._rebuild()
            cols = (arrays.event, arrays.arrival, arrays.key, arrays.payload, arrays.is_r)
        else:
            self._advance_horizon()
            cols = self._runs.merged_columns()
        snapshot = {
            "version": _STATE_VERSION,
            "shard_id": self.shard_id,
            "num_keys": self.num_keys,
            "agg": self.agg.value,
            "window_ms": self.window_ms,
            "retention_ms": self.retention_ms,
            "rebuild": self.rebuild,
            "max_arrival": self._max_arrival,
            "ingested": self.ingested,
            "evicted": self.evicted,
            "queries": self.queries,
            "columns": {
                name: _encode_column(col, _COLUMN_DTYPES[name])
                for name, col in zip(_COLUMN_DTYPES, cols)
            },
            "profile": profile_state(self.profile),
        }
        obs.observe(
            "serve.shard.ckpt_bytes", float(len(json.dumps(snapshot)))
        )
        return snapshot

    @classmethod
    def restore(cls, state: dict[str, Any]) -> "ShardStore":
        """Rebuild a shard from a :meth:`checkpoint` snapshot.

        Understands snapshot schema v2 (base64-packed columns, mode and
        ``queries`` counter recorded) and the legacy v1 ``.tolist()``
        format, which restores into the default incremental mode with
        ``queries`` starting at 0 (v1 never recorded it).
        """
        version = state.get("version")
        if version not in _KNOWN_STATE_VERSIONS:
            raise ValueError(f"unsupported shard snapshot version {version!r}")
        shard = cls(
            shard_id=int(state["shard_id"]),
            num_keys=int(state["num_keys"]),
            agg=AggKind(state["agg"]),
            window_ms=float(state["window_ms"]),
            retention_ms=float(state["retention_ms"]),
            rebuild=str(state.get("rebuild", "runs")),
        )
        raw = state["columns"]
        if version == 1:
            cols = (
                np.asarray(raw["event"], dtype=float),
                np.asarray(raw["arrival"], dtype=float),
                np.asarray(raw["key"], dtype=np.int64),
                np.asarray(raw["payload"], dtype=float),
                np.asarray(raw["is_r"], dtype=bool),
            )
        else:
            cols = tuple(
                _decode_column(raw[name], dtype)
                for name, dtype in _COLUMN_DTYPES.items()
            )
        if len(cols[0]):
            if shard.rebuild == "full":
                shard._chunks.append(cols)
                shard._dirty = True
            else:
                # from_chunk re-sorts defensively: snapshots written by
                # this code are already event-sorted (stable argsort is
                # then a no-op pass), but hand-built v1 dicts may not be.
                run = SortedRun.from_chunk(*cols)
                shard._runs.append(run)
                shard._grid.delta_append(
                    run.event, run.arrival, run.key, run.payload, run.is_r
                )
        restore_profile(shard.profile, state["profile"])
        shard._max_arrival = float(state["max_arrival"])
        shard.ingested = int(state["ingested"])
        shard.evicted = int(state["evicted"])
        shard.queries = int(state.get("queries", 0))
        return shard
