"""Key-sharded operator state for the serving layer.

Each shard owns a disjoint key range of the shared join state.  Two
storage modes answer the same queries:

* ``rebuild="runs"`` (default, the hot path): every ingest chunk becomes
  an event-sorted :class:`~repro.serve.runs.SortedRun` (one
  O(chunk log chunk) sort at ingest) stacked in a size-tiered
  :class:`~repro.serve.runs.RunStack` with amortized two-pointer
  compaction, while a mergeable
  :class:`~repro.joins.aggregator.DeltaGrid` extends per-window prefix
  aggregates in O(new tuples + touched windows) per chunk.  A query is
  a binary search into the window's prefix state; retention eviction
  advances per-run frontiers and drops whole expired runs — the shard
  never re-sorts or re-aggregates data it has already absorbed.
* ``rebuild="full"`` (the reference): concatenate all retained columns,
  re-argsort them in the ``BatchArrays`` constructor and rebuild the
  prefix-aggregate grid from scratch on the first query after new
  arrivals — O(state · log state) per touched tick.  Kept as the
  equivalence oracle: ``tests/serve/test_shards_incremental.py`` pins
  incremental answers exactly equal to this mode across randomized
  ingest/query/evict/checkpoint/migrate interleavings, and
  ``benchmarks/bench_hotpath.py`` gates the speedup.

Both modes agree bit for bit on integer accounting (``n_r``/``n_s``/
match counts — and therefore on every COUNT answer and on ``evicted``/
``len``); float payload sums agree to summation-order rounding
(~1 ulp per addend), the same caveat the batch aggregator carries.

Queries are answered with *PECJ-lite* compensation: the observed window
aggregate is inflated by the profile's completeness CDF — the paper's
reverse-linear ``1/c(a)`` distortion (Eq. 6) applied per sub-interval
age — using the closed forms of :func:`repro.core.compensation.
compensate` with the observed selectivity and payload mean as plug-in
posteriors.  It is deliberately the cheap instantiation: a serving
layer answering thousands of tenant queries per virtual second cannot
afford a full estimator stack per shard, and the profile is the part
that transfers across queries.

Shards checkpoint to plain JSON-compatible dicts (reusing
:func:`repro.core.persistence.profile_state`) with columns packed as
base64 little-endian arrays (snapshot schema v2; the v1 ``.tolist()``
format restores transparently), which is what tenant migration in
:mod:`repro.serve.service` round-trips.

Incremental shards can additionally *isolate hot keys*
(:meth:`ShardStore.isolate_hot_keys`, PanJoin-style): the named keys get
their own run stack and delta grid, so a viral key's compaction and grid
churn stop interleaving with — and starving — the cold tail's.  Queries
sum the two key-disjoint aggregates, which is exact for the integer
accounting (and for COUNT answers), and with an empty hot set the shard
executes the historical single-store path untouched.

Counters: ``serve.shard.ingested``, ``serve.shard.evicted``,
``serve.shard.queries``, ``serve.shard.rebuilds`` (full mode only),
``serve.shard.compactions``, ``serve.shard.delta_appends``,
``serve.shard.grid_rebuilds``, ``serve.shard.scan_fallbacks``,
``serve.shard.hot_isolations``, ``partition.migration_bytes``.
Gauge: ``serve.shard.runs``.  Histogram: ``serve.shard.ckpt_bytes``.
"""

from __future__ import annotations

import base64
import json
import math
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro import obs
from repro.core.compensation import compensate
from repro.core.delay_profile import DelayProfile
from repro.core.persistence import profile_state, restore_profile
from repro.joins.aggregator import DeltaAppendError, DeltaGrid
from repro.joins.arrays import AggKind, BatchArrays, WindowAggregate
from repro.serve.runs import RunStack, SortedRun

__all__ = ["ShardAnswer", "ShardStore"]

_STATE_VERSION = 2

#: Snapshot versions :meth:`ShardStore.restore` understands.  Version 1
#: is the pre-runs ``.tolist()`` column format.
_KNOWN_STATE_VERSIONS = frozenset({1, _STATE_VERSION})

#: Column dtypes of a v2 snapshot, little-endian for portability.
_COLUMN_DTYPES = {
    "event": "<f8",
    "arrival": "<f8",
    "key": "<i8",
    "payload": "<f8",
    "is_r": "|b1",
}

#: Sub-intervals a window is split into when averaging completeness —
#: matches the bucket granularity PECJ's batch operator compensates at.
_AGE_BUCKETS = 8

#: Floor on the mean completeness used to inflate observed counts; below
#: this the profile is effectively saying "almost nothing has arrived"
#: and ``1/c`` amplification becomes noise-dominated garbage.
_MIN_COMPLETENESS = 0.05

_EMPTY_AGG = WindowAggregate(0, 0, 0.0, 0.0)


def _encode_column(values: np.ndarray, dtype: str) -> str:
    """Pack one column as base64 little-endian bytes (JSON-safe)."""
    return base64.b64encode(
        np.ascontiguousarray(values, dtype=dtype).tobytes()
    ).decode("ascii")


def _decode_column(data: str, dtype: str) -> np.ndarray:
    """Invert :func:`_encode_column` into an owned, writable array."""
    return np.frombuffer(base64.b64decode(data), dtype=dtype).copy()


@dataclass(frozen=True, slots=True)
class ShardAnswer:
    """One shard's answer to a window query.

    Attributes:
        value: The compensated output ``O`` (equals ``observed`` when
            the profile is cold or compensation is off).
        observed: The conservative observed-only aggregate — the
            WMJ-equivalent answer, what fallback and shedding return.
        n_r: Observed R-side tuples in the window view.
        n_s: Observed S-side tuples in the window view.
        starved: Whether a side had no observed tuples at all (the
            signal the degradation controller widens or sheds on).
        completeness: The mean completeness ``c̄`` used to inflate the
            observed counts (1.0 when cold).
    """

    value: float
    observed: float
    n_r: int
    n_s: int
    starved: bool
    completeness: float


_EMPTY_ANSWER = ShardAnswer(0.0, 0.0, 0, 0, True, 1.0)


class _HotStore:
    """Dedicated run/grid state of a shard's isolated hot keys.

    Mirrors the shard's incremental cold state (a
    :class:`~repro.serve.runs.RunStack` plus a
    :class:`~repro.joins.aggregator.DeltaGrid`) for the promoted key
    subset, so a viral key's compactions and grid extensions never touch
    the cold tail's structures.
    """

    def __init__(self, num_keys: int, window_ms: float):
        self.runs = RunStack()
        self.grid = DeltaGrid(num_keys, window_ms)
        self.grid_dirty = False


class ShardStore:
    """Operator state of one key shard.

    Args:
        shard_id: The shard's index (labels trace events).
        num_keys: Global key-space size (shards see a subset but the
            bincount aggregation needs the global width); ingested keys
            must lie in ``[0, num_keys)``.
        agg: Aggregation answered by :meth:`query`.
        window_ms: Window length of the query grid.
        retention_ms: Tuples whose event time falls further than this
            behind the newest arrival are dropped (run-granular in
            incremental mode, on rebuild in full mode).  Must
            comfortably exceed the window length plus the widest
            availability budget or queries would silently lose history.
        profile: Delay profile to adopt (default: a fresh one).
        rebuild: ``"runs"`` for the incremental sorted-run state
            (default), ``"full"`` for the full-rebuild reference mode.
    """

    def __init__(
        self,
        shard_id: int,
        num_keys: int,
        agg: AggKind,
        window_ms: float,
        retention_ms: float,
        profile: DelayProfile | None = None,
        rebuild: str = "runs",
    ):
        if retention_ms < 2.0 * window_ms:
            raise ValueError("retention_ms must cover at least two windows")
        if rebuild not in ("runs", "full"):
            raise ValueError(f"unknown rebuild mode {rebuild!r}")
        self.shard_id = shard_id
        self.num_keys = num_keys
        self.agg = agg
        self.window_ms = window_ms
        self.retention_ms = retention_ms
        self.profile = profile or DelayProfile()
        self.rebuild = rebuild
        # Full-rebuild reference state.
        self._chunks: list[tuple[np.ndarray, ...]] = []
        self._arrays: BatchArrays | None = None
        self._dirty = False
        # Incremental sorted-run state.
        self._runs = RunStack()
        self._grid = DeltaGrid(num_keys, window_ms)
        self._grid_dirty = False
        # Hot-key isolation (runs mode only): None until
        # :meth:`isolate_hot_keys` promotes a non-empty key set, so the
        # historical single-store path runs untouched by default.
        self.hot_keys: tuple[int, ...] = ()
        self._hot: _HotStore | None = None
        self._hot_lookup: np.ndarray | None = None
        self.migration_bytes = 0
        self._max_arrival = 0.0
        self.ingested = 0
        self.evicted = 0
        self.queries = 0

    def __len__(self) -> int:
        """Live tuples (lifetime ingested minus lifetime evicted), O(1)."""
        return self.ingested - self.evicted

    # -- ingest ------------------------------------------------------------

    def ingest(
        self,
        event: np.ndarray,
        arrival: np.ndarray,
        key: np.ndarray,
        payload: np.ndarray,
        is_r: np.ndarray,
    ) -> None:
        """Absorb a batch of arrived tuples (columnar, any order).

        Delays are learned as ``max(arrival - event, 0)`` — the profile
        rejects negative delays outright, and a tuple that arrived
        early has simply arrived.  Keys outside ``[0, num_keys)`` are
        rejected before any state is touched.
        """
        if len(event) == 0:
            return
        event = np.asarray(event, dtype=float)
        arrival = np.asarray(arrival, dtype=float)
        key = np.asarray(key, dtype=np.int64)
        payload = np.asarray(payload, dtype=float)
        is_r = np.asarray(is_r, dtype=bool)
        if int(key.min()) < 0 or int(key.max()) >= self.num_keys:
            raise ValueError(
                f"shard {self.shard_id}: keys must lie in [0, {self.num_keys}), "
                f"got [{int(key.min())}, {int(key.max())}]"
            )
        if self.rebuild == "full":
            self._chunks.append((event, arrival, key, payload, is_r))
            self._dirty = True
        else:
            cold = (event, arrival, key, payload, is_r)
            hot = None
            if self._hot is not None:
                hot_mask = self._hot_lookup[key]
                if hot_mask.any():
                    cold_mask = ~hot_mask
                    hot = tuple(col[hot_mask] for col in cold)
                    cold = tuple(col[cold_mask] for col in cold)
            if len(cold[0]):
                self._append_run(self._runs, cold, hot=False)
            if hot is not None:
                self._append_run(self._hot.runs, hot, hot=True)
            obs.gauge("serve.shard.runs").set(float(len(self._runs)))
        self.profile.update(np.maximum(arrival - event, 0.0))
        self._max_arrival = max(self._max_arrival, float(np.max(arrival)))
        self.ingested += len(event)
        obs.counter("serve.shard.ingested").inc(len(event))

    def _append_run(
        self, stack: RunStack, cols: tuple[np.ndarray, ...], hot: bool
    ) -> None:
        """Append one chunk to a run stack and extend its delta grid."""
        run = SortedRun.from_chunk(*cols)
        merges = stack.append(run)
        if merges:
            obs.counter("serve.shard.compactions").inc(merges)
        dirty = self._hot.grid_dirty if hot else self._grid_dirty
        if not dirty:
            grid = self._hot.grid if hot else self._grid
            try:
                grid.delta_append(
                    run.event, run.arrival, run.key, run.payload, run.is_r
                )
                obs.counter("serve.shard.delta_appends").inc()
            except DeltaAppendError:
                # Out-of-order arrivals (never the service's tick
                # path): rebuild the grid lazily from the runs.
                if hot:
                    self._hot.grid_dirty = True
                else:
                    self._grid_dirty = True

    # -- full-rebuild reference path ---------------------------------------

    def _rebuild(self) -> BatchArrays:
        """Merge buffered chunks into the queryable arrays, evicting old state."""
        if not self._dirty and self._arrays is not None:
            return self._arrays
        cols: list[list[np.ndarray]] = [[], [], [], [], []]
        if self._arrays is not None:
            prior = self._arrays
            for i, col in enumerate(
                (prior.event, prior.arrival, prior.key, prior.payload, prior.is_r)
            ):
                cols[i].append(col)
        for chunk in self._chunks:
            for i, col in enumerate(chunk):
                cols[i].append(col)
        if not cols[0]:
            cols = [
                [np.empty(0)],
                [np.empty(0)],
                [np.empty(0, dtype=np.int64)],
                [np.empty(0)],
                [np.empty(0, dtype=bool)],
            ]
        event = np.concatenate(cols[0])
        keep = event >= self._max_arrival - self.retention_ms
        dropped = int(len(keep) - keep.sum())
        if dropped:
            self.evicted += dropped
            obs.counter("serve.shard.evicted").inc(dropped)
        self._arrays = BatchArrays(
            event[keep],
            np.concatenate(cols[1])[keep],
            np.concatenate(cols[2])[keep],
            np.concatenate(cols[3])[keep],
            np.concatenate(cols[4])[keep],
        )
        # Key aggregation must span the global key space even when this
        # shard happens to hold a narrow slice of it.
        self._arrays._num_keys = self.num_keys
        self._chunks.clear()
        self._dirty = False
        obs.counter("serve.shard.rebuilds").inc()
        return self._arrays

    # -- incremental sorted-run path ---------------------------------------

    @property
    def horizon(self) -> float:
        """Retention cutoff: events older than this are (to be) evicted."""
        return self._max_arrival - self.retention_ms

    def _advance_horizon(self) -> float:
        """Expire state behind the horizon; reference-identical counting.

        Newly expired tuples are exactly those the reference's
        rebuild-time ``event >= horizon`` filter would drop now, so the
        ``evicted`` counter (and ``len``) agree across modes after
        every query.  Run eviction is frontier bumps + whole-run drops;
        grid windows fully behind the horizon release their state in
        one dict deletion (with one window of float-fuzz slack — the
        query path re-checks ``start >= horizon`` regardless).
        """
        horizon = self.horizon
        newly = self._runs.advance_horizon(horizon)
        if newly:
            self.evicted += newly
            obs.counter("serve.shard.evicted").inc(newly)
            obs.gauge("serve.shard.runs").set(float(len(self._runs)))
        self._grid.drop_below(
            math.floor((horizon - self._grid.origin) / self._grid.length) - 1
        )
        if self._hot is not None:
            newly_hot = self._hot.runs.advance_horizon(horizon)
            if newly_hot:
                self.evicted += newly_hot
                obs.counter("serve.shard.evicted").inc(newly_hot)
            self._hot.grid.drop_below(
                math.floor((horizon - self._hot.grid.origin) / self._hot.grid.length)
                - 1
            )
        return horizon

    def _ensure_grid(self) -> DeltaGrid:
        """The cold delta grid, rebuilt from the runs after disorder."""
        if self._grid_dirty:
            self._grid = DeltaGrid(self.num_keys, self.window_ms)
            cols = self._runs.merged_columns()
            if len(cols[0]):
                self._grid.delta_append(*cols)
            self._grid_dirty = False
            obs.counter("serve.shard.grid_rebuilds").inc()
        return self._grid

    def _ensure_hot_grid(self) -> DeltaGrid:
        """The hot delta grid, rebuilt from the hot runs after disorder."""
        hot = self._hot
        if hot.grid_dirty:
            hot.grid = DeltaGrid(self.num_keys, self.window_ms)
            cols = hot.runs.merged_columns()
            if len(cols[0]):
                hot.grid.delta_append(*cols)
            hot.grid_dirty = False
            obs.counter("serve.shard.grid_rebuilds").inc()
        return hot.grid

    def _scan(
        self,
        start: float,
        end: float,
        available_by: float | None,
        horizon: float,
        stack: RunStack | None = None,
    ) -> WindowAggregate:
        """Reference-exact rescan over a run stack (the slow path).

        Used for off-grid windows and for the single window straddling
        the retention horizon, where the grid's prefix state would
        include tuples the reference has already evicted.  ``stack``
        defaults to the cold runs; the hot query path passes its own.
        """
        num_keys = self.num_keys
        c_r = np.zeros(num_keys, dtype=np.int64)
        c_s = np.zeros(num_keys, dtype=np.int64)
        sum_rv = np.zeros(num_keys)
        n_r = 0
        n_s = 0
        lo_bound = max(start, horizon)
        for run in (stack if stack is not None else self._runs).runs:
            sl = run.live_slice(lo_bound, end)
            if sl.stop <= sl.start:
                continue
            k = run.key[sl]
            r = run.is_r[sl]
            p = run.payload[sl]
            if available_by is not None:
                avail = run.arrival[sl] <= available_by
                k = k[avail]
                r = r[avail]
                p = p[avail]
            if len(k) == 0:
                continue
            n_r += int(r.sum())
            n_s += int(len(k) - r.sum())
            c_r += np.bincount(k[r], minlength=num_keys)
            c_s += np.bincount(k[~r], minlength=num_keys)
            sum_rv += np.bincount(k[r], weights=p[r], minlength=num_keys)
        if n_r == 0 or n_s == 0:
            return WindowAggregate(n_r, n_s, 0.0, 0.0)
        return WindowAggregate(n_r, n_s, float(c_r @ c_s), float(sum_rv @ c_s))

    def _query_runs(
        self, start: float, end: float, available_by: float | None, horizon: float
    ) -> WindowAggregate:
        """Observed aggregate of ``[start, end)`` off the run structure.

        With hot keys isolated, the cold and hot stores are queried
        independently and their aggregates summed — exact, because the
        partitions are key-disjoint (no cross-partition matches exist,
        so ``matches`` and ``sum_r`` decompose additively).
        """
        grid = self._ensure_grid()
        if grid.covers(start, end) and start >= horizon:
            agg = grid.query(grid.window_index(start), available_by)
        else:
            obs.counter("serve.shard.scan_fallbacks").inc()
            agg = self._scan(start, end, available_by, horizon)
        if self._hot is None:
            return agg
        hot_grid = self._ensure_hot_grid()
        if hot_grid.covers(start, end) and start >= horizon:
            hot_agg = hot_grid.query(hot_grid.window_index(start), available_by)
        else:
            obs.counter("serve.shard.scan_fallbacks").inc()
            hot_agg = self._scan(start, end, available_by, horizon, self._hot.runs)
        return WindowAggregate(
            agg.n_r + hot_agg.n_r,
            agg.n_s + hot_agg.n_s,
            agg.matches + hot_agg.matches,
            agg.sum_r + hot_agg.sum_r,
        )

    # -- hot-key isolation --------------------------------------------------

    #: Serialized width of one tuple row (3 float64 + 1 int64 + 1 bool),
    #: used for migration-byte accounting.
    _ROW_BYTES = 33

    def _live_columns(self) -> tuple[np.ndarray, ...]:
        """Post-eviction live columns across cold and hot stores, event-sorted."""
        cold = self._runs.merged_columns()
        if self._hot is None:
            return cold
        hot = self._hot.runs.merged_columns()
        if not len(hot[0]):
            return cold
        if not len(cold[0]):
            return hot
        merged = tuple(np.concatenate((c, h)) for c, h in zip(cold, hot))
        order = np.argsort(merged[0], kind="stable")
        return tuple(col[order] for col in merged)

    def isolate_hot_keys(self, keys) -> int:
        """Re-partition the shard's state around a new hot-key set.

        The named keys move into a dedicated run stack + delta grid (the
        cold tail keeps its own), so one viral key's compaction and grid
        churn can no longer starve the rest of the shard; an empty
        ``keys`` dissolves the hot store and folds everything back.
        Live tuples whose ownership changes are re-split from the merged
        post-eviction columns — the integer accounting (``ingested`` /
        ``evicted`` / ``len``) is untouched and every subsequent query
        still sums to the unpartitioned answer exactly.  Incremental
        (``rebuild="runs"``) shards only.

        Returns the migrated bytes (also accumulated in
        :attr:`migration_bytes` and the ``partition.migration_bytes``
        counter).
        """
        if self.rebuild != "runs":
            raise ValueError("hot-key isolation requires rebuild='runs'")
        new = tuple(sorted({int(k) for k in keys}))
        for k in new:
            if not 0 <= k < self.num_keys:
                raise ValueError(
                    f"shard {self.shard_id}: hot key {k} outside [0, {self.num_keys})"
                )
        if new == self.hot_keys:
            return 0
        self._advance_horizon()
        cols = self._live_columns()
        lookup = np.zeros(self.num_keys, dtype=bool)
        if new:
            lookup[list(new)] = True
        key_col = cols[2]
        if len(key_col):
            new_mask = lookup[key_col]
            old_mask = (
                self._hot_lookup[key_col]
                if self._hot_lookup is not None
                else np.zeros(len(key_col), dtype=bool)
            )
            moved_bytes = int((new_mask ^ old_mask).sum()) * self._ROW_BYTES
        else:
            new_mask = np.zeros(0, dtype=bool)
            moved_bytes = 0
        self._runs = RunStack()
        self._grid = DeltaGrid(self.num_keys, self.window_ms)
        self._grid_dirty = False
        if new:
            self._hot = _HotStore(self.num_keys, self.window_ms)
            self._hot_lookup = lookup
        else:
            self._hot = None
            self._hot_lookup = None
        if len(key_col):
            cold_cols = tuple(col[~new_mask] for col in cols)
            if len(cold_cols[0]):
                self._append_run(self._runs, cold_cols, hot=False)
            if new:
                hot_cols = tuple(col[new_mask] for col in cols)
                if len(hot_cols[0]):
                    self._append_run(self._hot.runs, hot_cols, hot=True)
        self.hot_keys = new
        self.migration_bytes += moved_bytes
        obs.counter("partition.migration_bytes").inc(moved_bytes)
        obs.counter("serve.shard.hot_isolations").inc()
        obs.gauge("serve.shard.runs").set(float(len(self._runs)))
        return moved_bytes

    # -- queries -----------------------------------------------------------

    def query(
        self, start: float, end: float, available_by: float, compensate_output: bool = True
    ) -> ShardAnswer:
        """Answer a window join query over the shard's observed state.

        Args:
            start, end: Window bounds in event time (grid-aligned
                windows ride the cached prefix-aggregate index; off-grid
                ranges fall back to a scan).
            available_by: Virtual time bounding which arrivals the
                answer may see (the query's availability budget,
                widening included).
            compensate_output: Inflate the observed aggregate by the
                delay profile's completeness (False answers
                observed-only — the fallback path).
        """
        self.queries += 1
        obs.counter("serve.shard.queries").inc()
        if self.rebuild == "full":
            arrays = self._rebuild()
            if len(arrays) == 0:
                return _EMPTY_ANSWER
            aggregator = arrays.aggregator(end - start)
            observed_agg = aggregator.try_at(start, end, available_by, clock="arrival")
            if observed_agg is None:
                observed_agg = arrays.aggregate(
                    start, end, available_by, clock="arrival"
                )
        else:
            horizon = self._advance_horizon()
            if len(self) == 0:
                return _EMPTY_ANSWER
            observed_agg = self._query_runs(start, end, available_by, horizon)
        observed = observed_agg.value(self.agg)
        starved = observed_agg.n_r == 0 or observed_agg.n_s == 0
        if not compensate_output or not self.profile.is_warm or starved:
            return ShardAnswer(
                observed, observed, observed_agg.n_r, observed_agg.n_s, starved, 1.0
            )
        mids = start + (np.arange(_AGE_BUCKETS) + 0.5) * (end - start) / _AGE_BUCKETS
        ages = available_by - mids
        c_bar = float(np.mean(np.clip(self.profile.completeness_many(ages), 0.0, 1.0)))
        if not math.isfinite(c_bar):
            # A poisoned delay profile (forced estimator divergence)
            # propagates NaN through completeness_many; max() below
            # would pass it straight into compensate().  Surface a NaN
            # answer instead so the DegradationController's non-finite
            # check trips its hard-fallback path.
            obs.counter("serve.shard.nonfinite_completeness").inc()
            return ShardAnswer(
                float("nan"),
                observed,
                observed_agg.n_r,
                observed_agg.n_s,
                starved,
                float("nan"),
            )
        c_bar = max(c_bar, _MIN_COMPLETENESS)
        estimate = compensate(
            self.agg,
            observed_agg.n_r / c_bar,
            observed_agg.n_s / c_bar,
            observed_agg.selectivity,
            observed_agg.alpha_r,
        )
        return ShardAnswer(
            estimate.value,
            observed,
            observed_agg.n_r,
            observed_agg.n_s,
            starved,
            c_bar,
        )

    # -- checkpoint / migration --------------------------------------------

    def checkpoint(self) -> dict[str, Any]:
        """Snapshot the shard as a JSON-compatible dict (schema v2).

        The snapshot captures the post-eviction merged columns (so a
        restored shard answers queries identically), the learned delay
        profile, and the lifetime counters — ``ingested``, ``evicted``
        *and* ``queries``, so a migrated shard's accounting identities
        keep holding — everything a successor needs to take over the
        shard mid-run.  Columns are packed as base64 little-endian
        arrays; the serialized size lands in the
        ``serve.shard.ckpt_bytes`` histogram.  In incremental mode the
        columns come from a two-pointer merge of the live runs — no
        re-sort — and the run structure itself is *not* serialized: a
        restore adopts the merged columns as one run, which compaction
        then grows normally.
        """
        if self.rebuild == "full":
            arrays = self._rebuild()
            cols = (arrays.event, arrays.arrival, arrays.key, arrays.payload, arrays.is_r)
        else:
            self._advance_horizon()
            cols = self._live_columns()
        snapshot = {
            "version": _STATE_VERSION,
            "shard_id": self.shard_id,
            "num_keys": self.num_keys,
            "agg": self.agg.value,
            "window_ms": self.window_ms,
            "retention_ms": self.retention_ms,
            "rebuild": self.rebuild,
            "max_arrival": self._max_arrival,
            "ingested": self.ingested,
            "evicted": self.evicted,
            "queries": self.queries,
            "columns": {
                name: _encode_column(col, _COLUMN_DTYPES[name])
                for name, col in zip(_COLUMN_DTYPES, cols)
            },
            "profile": profile_state(self.profile),
        }
        if self.hot_keys:
            snapshot["hot_keys"] = list(self.hot_keys)
        obs.observe(
            "serve.shard.ckpt_bytes", float(len(json.dumps(snapshot)))
        )
        return snapshot

    @classmethod
    def restore(cls, state: dict[str, Any]) -> "ShardStore":
        """Rebuild a shard from a :meth:`checkpoint` snapshot.

        Understands snapshot schema v2 (base64-packed columns, mode and
        ``queries`` counter recorded) and the legacy v1 ``.tolist()``
        format, which restores into the default incremental mode with
        ``queries`` starting at 0 (v1 never recorded it).
        """
        version = state.get("version")
        if version not in _KNOWN_STATE_VERSIONS:
            raise ValueError(f"unsupported shard snapshot version {version!r}")
        shard = cls(
            shard_id=int(state["shard_id"]),
            num_keys=int(state["num_keys"]),
            agg=AggKind(state["agg"]),
            window_ms=float(state["window_ms"]),
            retention_ms=float(state["retention_ms"]),
            rebuild=str(state.get("rebuild", "runs")),
        )
        raw = state["columns"]
        if version == 1:
            cols = (
                np.asarray(raw["event"], dtype=float),
                np.asarray(raw["arrival"], dtype=float),
                np.asarray(raw["key"], dtype=np.int64),
                np.asarray(raw["payload"], dtype=float),
                np.asarray(raw["is_r"], dtype=bool),
            )
        else:
            cols = tuple(
                _decode_column(raw[name], dtype)
                for name, dtype in _COLUMN_DTYPES.items()
            )
        if len(cols[0]):
            if shard.rebuild == "full":
                shard._chunks.append(cols)
                shard._dirty = True
            else:
                # from_chunk re-sorts defensively: snapshots written by
                # this code are already event-sorted (stable argsort is
                # then a no-op pass), but hand-built v1 dicts may not be.
                run = SortedRun.from_chunk(*cols)
                shard._runs.append(run)
                shard._grid.delta_append(
                    run.event, run.arrival, run.key, run.payload, run.is_r
                )
        restore_profile(shard.profile, state["profile"])
        shard._max_arrival = float(state["max_arrival"])
        shard.ingested = int(state["ingested"])
        shard.evicted = int(state["evicted"])
        shard.queries = int(state.get("queries", 0))
        hot_keys = state.get("hot_keys")
        if hot_keys:
            # Re-split the adopted columns around the snapshot's hot set
            # (v1 snapshots and checkpoints without isolation skip this).
            shard.isolate_hot_keys(hot_keys)
            shard.migration_bytes = 0
        return shard
