"""Per-tenant admission control: token-bucket quotas on the virtual clock.

A multi-tenant service cannot let one chatty tenant starve the rest, so
every query passes an admission gate before it touches operator state.
The gate is a classic token bucket per tenant, refilled continuously on
the service's *virtual* clock — no wall-clock reads, so admission
decisions are a pure function of the submission schedule and replay
byte-identically.

Rejections are the service's first (cheapest) load-shedding layer:
an over-quota query costs one dictionary lookup and a counter bump,
never a queue slot or a shard touch.  Counters:

* ``serve.admission.admitted`` — queries that passed the gate;
* ``serve.admission.rejected`` — queries refused for lack of tokens.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs

__all__ = ["TenantQuota", "AdmissionController"]


@dataclass(frozen=True, slots=True)
class TenantQuota:
    """A tenant's query budget.

    Attributes:
        rate_per_s: Sustained admitted-query rate (queries per virtual
            second) — the bucket's refill rate.
        burst: Bucket depth — how many queries a tenant may submit
            back-to-back after saving up.
    """

    rate_per_s: float = 50.0
    burst: float = 4.0

    def __post_init__(self) -> None:
        if self.rate_per_s <= 0.0:
            raise ValueError("rate_per_s must be > 0")
        if self.burst < 1.0:
            raise ValueError("burst must be >= 1 (a full bucket must admit)")


class AdmissionController:
    """Token-bucket admission gate shared by every tenant of a service.

    Buckets are created lazily on a tenant's first query, full — a new
    tenant starts with its whole burst available.  The controller never
    reads a wall clock: callers pass the virtual ``now_ms`` and refill
    is computed from elapsed virtual time.

    Args:
        quota: The per-tenant budget applied to every tenant.
    """

    def __init__(self, quota: TenantQuota):
        self.quota = quota
        self._tokens: dict[int, float] = {}
        self._last_ms: dict[int, float] = {}
        self.admitted = 0
        self.rejected = 0

    def admit(self, tenant: int, now_ms: float) -> bool:
        """Charge one query to ``tenant``'s bucket at virtual ``now_ms``.

        Returns True (and spends a token) when the tenant is within
        quota; False otherwise.  Either way the decision is counted.
        """
        q = self.quota
        tokens = self._tokens.get(tenant)
        if tokens is None:
            tokens = q.burst
        else:
            elapsed = now_ms - self._last_ms[tenant]
            tokens = min(q.burst, tokens + elapsed * q.rate_per_s / 1000.0)
        self._last_ms[tenant] = now_ms
        if tokens >= 1.0:
            self._tokens[tenant] = tokens - 1.0
            self.admitted += 1
            obs.counter("serve.admission.admitted").inc()
            return True
        self._tokens[tenant] = tokens
        self.rejected += 1
        obs.counter("serve.admission.rejected").inc()
        return False
