"""The long-running multi-tenant streaming join service.

This is the serving layer the ROADMAP calls for: many simulated tenants
submit window-join queries against a *shared* disordered ingest stream,
and one :class:`JoinService` sustains them end-to-end on an asyncio
event loop — admission control, bounded queues with backpressure,
key-sharded operator state, graceful degradation, checkpoint/migration
and vertical autoscaling, all on a virtual clock so a run is a pure
function of its :class:`ServeConfig` and fault plan.

Structure of one service run:

1. The whole ingest trace is pregenerated, vectorised, from the seeded
   RNG — per-tick Poisson arrival counts modulated by the fault plan's
   rate spikes (:meth:`FaultPlan.rate_factors`), exponential base
   delays plus burst extra delay (:meth:`FaultPlan.extra_delay_means`)
   — then sorted by *arrival*, which is the order the service feels it.
2. The tick loop advances virtual time in ``tick_ms`` steps.  Each tick
   it (a) dispatches the tick's arrivals to their key shards through
   bounded per-worker :class:`asyncio.Queue`\\ s — a full queue blocks
   the dispatcher, which is the backpressure that keeps memory bounded;
   (b) rolls per-tenant query schedules forward, passing each due query
   through the admission gate, a bounded per-tenant queue (overflow is
   *shed*, counted, never silently dropped), and a round-robin drain
   whose rotating start keeps one tenant from monopolising dispatch.
3. Simulated workers drain their queues, touching shard state and
   advancing per-worker virtual busy clocks priced by the engine cost
   model; query latency is virtual completion minus submission, so
   percentiles are deterministic regardless of asyncio interleaving.
4. At every autoscale boundary the loop barriers (drains all queues),
   lets the :class:`~repro.serve.autoscaler.VerticalAutoscaler` resize
   the pool, and remaps shards to workers.  A configured migration
   point barriers the same way, round-trips every shard through its
   JSON checkpoint and resumes on the restored state — the
   tenant-migration drill.

Counters: ``serve.ingest.events``, ``serve.queries.submitted`` /
``.completed`` / ``.shed_queue`` / ``.shed_starved`` / ``.fallback`` /
``.widened``, ``serve.migrations``, plus the vocabularies of
:mod:`repro.serve.admission`, :mod:`repro.serve.shards` and
:mod:`repro.serve.autoscaler`.  Histogram: ``serve.latency_ms``.
Trace instants: ``serve.rescale``, ``serve.migrate``.

Live telemetry (:mod:`repro.serve.telemetry`, on by default) rides the
same loop: the tick boundary sweeps the run's registry into ring time
series and advances the per-tenant-class SLO burn-rate alerts, and
every control-plane decision — admission rejection, queue/starved shed,
widen change, fallback entry, rescale, migration, profile
poison/repair — lands in the audit log (``audit.*`` counters).  A fault
plan with ``estimator_divergence`` events additionally poisons the
shard delay profiles at the event start and repairs them from their
last healthy checkpoint at the next barrier — the serving-layer version
of the chaos harness's forced-NaN drill.  Each run records into its own
scoped child registry (merged losslessly into the surrounding scope),
so :meth:`JoinService.openmetrics` and
:meth:`JoinService.telemetry_snapshot` expose exactly this run.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro import obs
from repro.obs import trace
from repro.obs.openmetrics import render_openmetrics
from repro.core.persistence import profile_state, restore_profile
from repro.engine.cost_model import EngineCostModel
from repro.faults.degrade import DegradationController, DegradeConfig
from repro.faults.plan import FaultPlan
from repro.joins.arrays import AggKind
from repro.serve.admission import AdmissionController, TenantQuota
from repro.serve.autoscaler import VerticalAutoscaler
from repro.serve.shards import ShardStore
from repro.serve.telemetry import ServeTelemetry, TelemetryConfig

__all__ = ["ServeConfig", "JoinService", "run_service"]


@dataclass(frozen=True)
class ServeConfig:
    """Everything that determines a service run.

    Attributes:
        tenants: Number of simulated tenants submitting queries.
        n_shards: Key shards the operator state is partitioned into
            (tuples hash by ``key % n_shards``; each tenant's queries
            target its home shard ``tenant % n_shards``).
        num_keys: Join key-space size.
        window_ms: Tumbling window length of tenant queries.
        omega_ms: Availability budget the degradation controllers
            resolve their widening step/cap against.
        duration_ms: Virtual length of the run.
        warmup_ms: Queries submitted before this are excluded from the
            latency percentiles (counters still see them).
        rate_per_ms: Baseline shared ingest rate (tuples per virtual
            ms, both sides together) before fault-plan modulation.
        base_delay_ms: Mean of the exponential baseline arrival delay.
        tick_ms: Virtual length of one dispatch tick.
        mean_query_interval_ms: Mean gap between one tenant's queries
            (exponential; divided by the plan's rate factor, so load
            spikes make tenants chattier too).
        tenant_queue_cap: Bound on each tenant's pending-query queue;
            overflow is shed and counted.
        worker_queue_cap: Bound on each worker's work queue; a full
            queue blocks the dispatcher (backpressure).
        quota: Per-tenant admission budget.
        min_workers: Autoscaler pool floor.
        max_workers: Autoscaler pool ceiling.
        autoscale_interval_ms: Virtual time between autoscale
            decisions (each is a barrier + possible rescale).
        agg: Aggregation of tenant queries (``"count"``/``"sum"``/
            ``"avg"``).
        seed: Seed of every RNG in the run.
        migrate_at_ms: If set, at the first tick boundary past this
            time every shard is checkpointed, JSON round-tripped and
            restored — the migration drill.
        degrade: Degradation tunables applied per shard (``None``
            widening tunables are resolved against ``omega_ms``).
        compensate_output: Answer queries with PECJ-lite completeness
            compensation (False serves observed-only answers).
        shard_rebuild: Shard storage mode — ``"runs"`` (default) rides
            the incremental sorted-run structure and delta grid,
            ``"full"`` is the full-rebuild reference
            (:class:`~repro.serve.shards.ShardStore`); answers are
            equal either way, only cost differs.
        telemetry: Live-telemetry tunables (sampling cadence, SLO
            policy, audit switch); ``TelemetryConfig(enabled=False)``
            pins the pre-telemetry no-op path.
    """

    tenants: int = 32
    n_shards: int = 4
    num_keys: int = 64
    window_ms: float = 50.0
    omega_ms: float = 10.0
    duration_ms: float = 1000.0
    warmup_ms: float = 200.0
    rate_per_ms: float = 4.0
    base_delay_ms: float = 4.0
    tick_ms: float = 5.0
    mean_query_interval_ms: float = 100.0
    tenant_queue_cap: int = 8
    worker_queue_cap: int = 16
    quota: TenantQuota = field(default_factory=TenantQuota)
    min_workers: int = 1
    max_workers: int = 8
    autoscale_interval_ms: float = 50.0
    agg: str = "count"
    seed: int = 0
    migrate_at_ms: float | None = None
    degrade: DegradeConfig = field(default_factory=DegradeConfig)
    compensate_output: bool = True
    shard_rebuild: str = "runs"
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)

    def __post_init__(self) -> None:
        if self.tenants < 1 or self.n_shards < 1:
            raise ValueError("need at least one tenant and one shard")
        if self.shard_rebuild not in ("runs", "full"):
            raise ValueError(f"unknown shard_rebuild mode {self.shard_rebuild!r}")
        if self.tick_ms <= 0.0 or self.duration_ms < self.tick_ms:
            raise ValueError("need 0 < tick_ms <= duration_ms")
        if not 1 <= self.min_workers <= self.max_workers:
            raise ValueError("need 1 <= min_workers <= max_workers")
        if self.autoscale_interval_ms < self.tick_ms:
            raise ValueError("autoscale_interval_ms must cover at least one tick")

    @property
    def retention_ms(self) -> float:
        """Shard retention horizon: windows stay queryable while any
        in-flight query (widened up to the budget cap) could touch them."""
        return 2.0 * self.window_ms + 4.0 * self.omega_ms + self.base_delay_ms * 8.0


@dataclass
class _Query:
    """One tenant query in flight."""

    tenant: int
    shard: int
    submit_ms: float
    start: float
    end: float


class JoinService:
    """A multi-tenant window-join service over shared disordered ingest.

    Construct with a config (and optionally a fault plan driving load),
    then either ``asyncio.run(service.run())`` or the synchronous
    :func:`run_service` wrapper.  The instance keeps its shards,
    controllers and per-tenant tallies readable after the run — tests
    assert fairness and accounting invariants straight off them.

    Args:
        config: The run's parameters.
        plan: Fault plan whose rate spikes / disorder bursts modulate
            the generated load (``None`` = steady state).
    """

    def __init__(self, config: ServeConfig, plan: FaultPlan | None = None):
        self.config = config
        self.plan = plan
        self.agg = AggKind(config.agg)
        self.cost_model = EngineCostModel()
        self.admission = AdmissionController(config.quota)
        self.autoscaler = VerticalAutoscaler(
            self.cost_model,
            min_workers=config.min_workers,
            max_workers=config.max_workers,
        )
        self.shards = [
            ShardStore(
                i,
                config.num_keys,
                self.agg,
                config.window_ms,
                config.retention_ms,
                rebuild=config.shard_rebuild,
            )
            for i in range(config.n_shards)
        ]
        # Per-shard degradation controllers; the service is a
        # construction site of DegradationController, so it must resolve
        # the widening budget (None tunables) against its omega here —
        # update_widen() refuses to run otherwise.
        self.controllers = [
            DegradationController(config.degrade) for _ in range(config.n_shards)
        ]
        for ctl in self.controllers:
            ctl.resolve_budget(config.omega_ms)
        self.tenant_queues: list[deque[_Query]] = [
            deque() for _ in range(config.tenants)
        ]
        self.tenant_completed = np.zeros(config.tenants, dtype=np.int64)
        self.tenant_submitted = np.zeros(config.tenants, dtype=np.int64)
        self.events_dispatched = 0
        self.queries_submitted = 0
        self.queries_completed = 0
        self.shed_queue = 0
        self.shed_starved = 0
        self.fallback_answers = 0
        self.widened_answers = 0
        self.migrations = 0
        self.peak_workers = config.min_workers
        self.latencies: list[float] = []
        self._migrated = False
        self._worker_error: Exception | None = None
        self.telemetry = ServeTelemetry(config.telemetry)
        self.slo = self.telemetry.slo
        self.audit = self.telemetry.audit
        self.sampler = self.telemetry.sampler
        self._registry: obs.MetricsRegistry | None = None
        # Forced estimator-divergence events poison the shard delay
        # profiles; the repair path only arms when the plan carries
        # them, so ordinary runs stay bit-identical.
        self._divergence = (
            sorted(plan.by_kind("estimator_divergence"), key=lambda e: e.t_start)
            if plan is not None
            else []
        )
        self._divergence_idx = 0
        self._profile_ckpts: list[dict[str, Any]] = []

    # -- load generation ---------------------------------------------------

    def _generate_ingest(self) -> tuple[np.ndarray, ...]:
        """Pregenerate the whole ingest trace, sorted by arrival time.

        Per-tick Poisson counts follow the plan's rate factors; each
        tuple's delay is exponential base plus (inside a disorder
        burst) an exponential extra with the burst's mean.
        """
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        n_ticks = int(round(cfg.duration_ms / cfg.tick_ms))
        tick_starts = np.arange(n_ticks) * cfg.tick_ms
        mids = tick_starts + 0.5 * cfg.tick_ms
        factors = (
            self.plan.rate_factors(mids) if self.plan is not None else np.ones(n_ticks)
        )
        counts = rng.poisson(cfg.rate_per_ms * cfg.tick_ms * factors)
        n = int(counts.sum())
        event = np.repeat(tick_starts, counts) + rng.uniform(0.0, cfg.tick_ms, n)
        extra_mean = (
            self.plan.extra_delay_means(event)
            if self.plan is not None
            else np.zeros(n)
        )
        delay = rng.exponential(cfg.base_delay_ms, n)
        delay += rng.exponential(1.0, n) * extra_mean
        arrival = event + delay
        key = rng.integers(0, cfg.num_keys, n)
        payload = rng.uniform(0.0, 2.0, n)
        is_r = rng.random(n) < 0.5
        order = np.argsort(arrival, kind="stable")
        return (
            event[order],
            arrival[order],
            key[order],
            payload[order],
            is_r[order],
        )

    def _due_queries(
        self, next_submit: np.ndarray, rng: np.random.Generator, tick_end: float
    ) -> list[_Query]:
        """Roll tenant schedules forward through ``tick_end``; the due queries.

        Each due query targets the most recently *closed* window of the
        tenant's home shard.  Gaps are exponential with the plan's rate
        factor dividing the mean — tenants get chattier under a spike.
        """
        cfg = self.config
        out: list[_Query] = []
        for tenant in np.nonzero(next_submit < tick_end)[0]:
            t = int(tenant)
            while next_submit[t] < tick_end:
                submit = float(next_submit[t])
                w_idx = int(submit // cfg.window_ms) - 1
                if w_idx >= 0:
                    out.append(
                        _Query(
                            tenant=t,
                            shard=t % cfg.n_shards,
                            submit_ms=submit,
                            start=w_idx * cfg.window_ms,
                            end=(w_idx + 1) * cfg.window_ms,
                        )
                    )
                factor = (
                    self.plan.rate_factor(submit) if self.plan is not None else 1.0
                )
                next_submit[t] += rng.exponential(cfg.mean_query_interval_ms) / factor
        out.sort(key=lambda q: (q.submit_ms, q.tenant))
        return out

    # -- work execution ----------------------------------------------------

    def _do_ingest(self, worker: int, item: tuple) -> None:
        """Apply one ingest batch on a worker: state update + virtual cost."""
        _, shard_id, cols, t_avail = item
        n = len(cols[0])
        self.shards[shard_id].ingest(*cols)
        cost = n * self.cost_model.eager_tuple_ms(
            "shj", len(self._busy), with_pecj=True
        )
        self._busy[worker] = max(self._busy[worker], t_avail) + cost
        self.events_dispatched += n
        obs.counter("serve.ingest.events").inc(n)

    def _do_query(self, worker: int, query: _Query) -> None:
        """Answer one tenant query on a worker.

        The shard's degradation controller supplies the availability
        widening (extra virtual wait for late data), decides starved
        windows' fate (widen further vs shed), and runs its health
        hysteresis over the compensated answer — fallback mode serves
        the conservative observed aggregate.
        """
        ctl = self.controllers[query.shard]
        widen = ctl.widen_ms
        available_by = query.submit_ms + widen
        answer = self.shards[query.shard].query(
            query.start,
            query.end,
            available_by,
            compensate_output=self.config.compensate_output and ctl.mode == "normal",
        )
        shed = ctl.update_widen(answer.starved)
        value = answer.value
        if shed:
            value = answer.observed
            self.shed_starved += 1
            obs.counter("serve.queries.shed_starved").inc()
        elif widen > 0.0:
            self.widened_answers += 1
            obs.counter("serve.queries.widened").inc()
        healthy, hard = ctl.assess(value, answer.observed, None)
        mode_before = ctl.mode
        fallback = ctl.observe(healthy, hard) == "fallback" and not shed
        if fallback:
            value = answer.observed
            self.fallback_answers += 1
            obs.counter("serve.queries.fallback").inc()
        cost = self.cost_model.pecj_compensate_ms
        self._busy[worker] = max(self._busy[worker], query.submit_ms) + cost
        latency = (self._busy[worker] + widen) - query.submit_ms
        self.queries_completed += 1
        self.tenant_completed[query.tenant] += 1
        obs.counter("serve.queries.completed").inc()
        warm = query.submit_ms >= self.config.warmup_ms
        if warm:
            self.latencies.append(latency)
            obs.observe("serve.latency_ms", latency)
        tel = self.telemetry
        if tel.enabled:
            if ctl.widen_ms != widen:
                tel.on_widen(query.shard, query.submit_ms, ctl.widen_ms)
            if ctl.mode == "fallback" and mode_before != "fallback":
                tel.on_fallback_entered(query.shard, query.submit_ms)
            tel.on_query(
                query.tenant,
                query.shard,
                query.submit_ms,
                latency,
                answer.value,
                answer.completeness,
                shed,
                fallback,
                warm,
            )

    async def _worker(self, idx: int, queue: asyncio.Queue) -> None:
        """One simulated worker: drain the queue until cancelled.

        A worker that simply died on an exception would deadlock the
        dispatcher against its full queue; instead the first failure is
        captured, subsequent items are drained unprocessed so barriers
        still complete, and the run loop re-raises at the next barrier.
        """
        while True:
            item = await queue.get()
            try:
                if self._worker_error is None:
                    if item[0] == "ingest":
                        self._do_ingest(idx, item)
                    else:
                        self._do_query(idx, item[1])
            except Exception as exc:
                self._worker_error = exc
            finally:
                queue.task_done()

    def _spawn_pool(self, n: int, start_ms: float) -> None:
        """(Re)create the worker pool: queues, tasks, virtual busy clocks.

        New clocks start at the later of the boundary time and the old
        pool's slowest clock — the rescale barrier drains queued work,
        and virtual time never runs backwards through a resize.
        """
        floor = max([start_ms] + self._busy) if self._busy else start_ms
        self._queues = [
            asyncio.Queue(maxsize=self.config.worker_queue_cap) for _ in range(n)
        ]
        self._busy = [floor] * n
        self._tasks = [
            asyncio.get_running_loop().create_task(self._worker(i, q))
            for i, q in enumerate(self._queues)
        ]
        self.peak_workers = max(self.peak_workers, n)

    async def _stop_pool(self) -> None:
        """Cancel the worker tasks (queues must already be drained)."""
        for task in self._tasks:
            task.cancel()
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []

    async def _barrier(self) -> None:
        """Wait until every worker queue is fully drained.

        Raises:
            RuntimeError: A worker failed since the last barrier; the
                original exception is chained as the cause.
        """
        await asyncio.gather(*(q.join() for q in self._queues))
        if self._worker_error is not None:
            raise RuntimeError("a serve worker failed") from self._worker_error

    def _migrate(self, now_ms: float) -> None:
        """Checkpoint, JSON round-trip and restore every shard in place."""
        for i, shard in enumerate(self.shards):
            snapshot = json.loads(json.dumps(shard.checkpoint()))
            self.shards[i] = ShardStore.restore(snapshot)
            self.migrations += 1
            obs.counter("serve.migrations").inc()
        trace.instant("serve.migrate", now_ms, cat="serve")
        self.telemetry.on_migrate(now_ms, len(self.shards))

    # -- forced-divergence drill -------------------------------------------

    def _maybe_poison(self, tick_end: float) -> None:
        """Poison every shard's delay profile at a due divergence event.

        Only the bucket counts are NaN'd: the profile stays warm
        (``_total`` untouched), so compensated queries keep consulting
        it and surface NaN completeness — the realistic failure the
        shard's non-finite guard and the controllers then absorb.
        """
        while (
            self._divergence_idx < len(self._divergence)
            and tick_end >= self._divergence[self._divergence_idx].t_start
        ):
            for shard in self.shards:
                profile = shard.profile
                profile._counts = np.full_like(profile._counts, np.nan)
                profile._cdf_cache = None
            obs.counter("serve.profile.poisons").inc()
            self.telemetry.on_profile_poison(tick_end, len(self.shards))
            self._divergence_idx += 1

    def _profile_healthy(self, shard: ShardStore) -> bool:
        """Probe one shard's delay profile for finite completeness."""
        probe = np.asarray([shard.profile._span * 0.5])
        return bool(np.isfinite(shard.profile.completeness_many(probe)).all())

    def _repair_profiles(self, now_ms: float) -> None:
        """Barrier-time repair: restore poisoned profiles, refresh checkpoints.

        Healthy profiles refresh their checkpoint (so a later repair
        restores recent state); poisoned ones are restored in place from
        the last healthy checkpoint, counted and audited.
        """
        for i, shard in enumerate(self.shards):
            if self._profile_healthy(shard):
                self._profile_ckpts[i] = profile_state(shard.profile)
            else:
                restore_profile(shard.profile, self._profile_ckpts[i])
                obs.counter("serve.profile.repairs").inc()
                self.telemetry.on_profile_repair(i, now_ms)

    # -- the run -----------------------------------------------------------

    async def run(self) -> dict[str, Any]:
        """Drive the service for ``duration_ms`` of virtual time.

        Returns the run report (the dict :func:`run_service` documents).
        The run records into its own scoped child registry — merged
        losslessly into the surrounding scope on exit — so the
        telemetry sampler and the exporters see exactly this run's
        instruments regardless of what else the process measured.
        """
        with obs.scoped() as reg:
            self._registry = reg
            return await self._run_inner()

    async def _run_inner(self) -> dict[str, Any]:
        """The tick loop body of :meth:`run` (inside the scoped registry)."""
        cfg = self.config
        tel = self.telemetry
        event, arrival, key, payload, is_r = self._generate_ingest()
        shard_of = key % cfg.n_shards
        rng_q = np.random.default_rng(cfg.seed + 1)
        next_submit = rng_q.uniform(0.0, cfg.mean_query_interval_ms, cfg.tenants)
        n_ticks = int(round(cfg.duration_ms / cfg.tick_ms))
        ticks_per_scale = max(1, int(round(cfg.autoscale_interval_ms / cfg.tick_ms)))
        self._busy: list[float] = []
        self._tasks: list[asyncio.Task] = []
        workers = cfg.min_workers
        self._spawn_pool(workers, 0.0)
        cursor = 0
        tuples_since = 0
        queries_since = 0
        rr_offset = 0
        if self._divergence:
            self._profile_ckpts = [profile_state(s.profile) for s in self.shards]
        try:
            for tick in range(n_ticks):
                tick_end = (tick + 1) * cfg.tick_ms
                if self._divergence:
                    self._maybe_poison(tick_end)
                # 1. Ingest: this tick's arrivals, fanned out by key shard.
                hi = int(np.searchsorted(arrival[cursor:], tick_end)) + cursor
                if hi > cursor:
                    sl = slice(cursor, hi)
                    for shard_id in np.unique(shard_of[sl]):
                        mask = shard_of[sl] == shard_id
                        cols = (
                            event[sl][mask],
                            arrival[sl][mask],
                            key[sl][mask],
                            payload[sl][mask],
                            is_r[sl][mask],
                        )
                        await self._queues[int(shard_id) % len(self._queues)].put(
                            ("ingest", int(shard_id), cols, tick_end)
                        )
                        tuples_since += int(mask.sum())
                    cursor = hi
                # 2. Queries: admission gate -> bounded tenant queue.
                for query in self._due_queries(next_submit, rng_q, tick_end):
                    self.queries_submitted += 1
                    self.tenant_submitted[query.tenant] += 1
                    obs.counter("serve.queries.submitted").inc()
                    admitted = self.admission.admit(query.tenant, query.submit_ms)
                    self.telemetry.on_admission(
                        query.tenant, query.submit_ms, admitted
                    )
                    if not admitted:
                        continue
                    tq = self.tenant_queues[query.tenant]
                    if len(tq) >= cfg.tenant_queue_cap:
                        self.shed_queue += 1
                        obs.counter("serve.queries.shed_queue").inc()
                        self.telemetry.on_queue_shed(query.tenant, query.submit_ms)
                        continue
                    tq.append(query)
                # 3. Round-robin drain across tenants (rotating start).
                queries_since += await self._drain_tenants(rr_offset)
                rr_offset = (rr_offset + 1) % cfg.tenants
                # 4. Boundaries: barrier, then migrate and/or rescale.
                at_scale_boundary = (tick + 1) % ticks_per_scale == 0
                migrate_due = (
                    cfg.migrate_at_ms is not None
                    and not self._migrated
                    and tick_end >= cfg.migrate_at_ms
                )
                if at_scale_boundary or migrate_due:
                    await self._barrier()
                    if self._divergence:
                        self._repair_profiles(tick_end)
                if migrate_due:
                    self._migrate(tick_end)
                    self._migrated = True
                if at_scale_boundary:
                    new = self.autoscaler.observe(
                        tuples_since,
                        queries_since,
                        workers,
                        ticks_per_scale * cfg.tick_ms,
                    )
                    tuples_since = 0
                    queries_since = 0
                    if new != workers:
                        trace.instant(
                            "serve.rescale",
                            tick_end,
                            cat="serve",
                            args={"from": workers, "to": new},
                        )
                        self.telemetry.on_rescale(tick_end, workers, new)
                        await self._stop_pool()
                        self._spawn_pool(new, tick_end)
                        workers = new
                if tel.enabled and tick_end >= tel.next_due_ms:
                    tel.on_tick(tick_end)
            # Final drain: leftover tenant-queue backlog is completed, so
            # admitted work is always accounted (completed or shed).
            await self._drain_tenants(rr_offset)
            await self._barrier()
            self.telemetry.finalize(cfg.duration_ms)
        finally:
            await self._stop_pool()
        return self._report()

    async def _drain_tenants(self, offset: int) -> int:
        """Dispatch queued tenant queries round-robin; returns the count.

        Starts at ``offset`` and pops one query per tenant per round so
        a backlogged tenant cannot monopolise the worker queues ahead
        of others.
        """
        cfg = self.config
        dispatched = 0
        pending = True
        while pending:
            pending = False
            for i in range(cfg.tenants):
                tq = self.tenant_queues[(offset + i) % cfg.tenants]
                if tq:
                    query = tq.popleft()
                    await self._queues[query.shard % len(self._queues)].put(
                        ("query", query)
                    )
                    dispatched += 1
                    pending = pending or bool(tq)
        return dispatched

    # -- telemetry export --------------------------------------------------

    def telemetry_snapshot(self) -> dict[str, Any]:
        """The run's JSON telemetry endpoint.

        Bundles the scoped registry snapshot with the ring time series,
        the per-class SLO budget table, the alert transition history and
        the audit-log size — everything an operator dashboard would
        poll, deterministic for a given config and plan.
        """
        metrics = (
            self._registry.snapshot()
            if self._registry is not None
            else {"schema_version": obs.SNAPSHOT_SCHEMA_VERSION}
        )
        return {
            "schema_version": obs.SNAPSHOT_SCHEMA_VERSION,
            "metrics": metrics,
            **self.telemetry.snapshot(),
        }

    def openmetrics(self) -> str:
        """The run's registry as OpenMetrics text (``# EOF``-terminated).

        Rendered from the run's scoped registry, sorted and canonically
        formatted, so serial and ``--workers 2`` benches of the same
        cell expose identical bytes.
        """
        snapshot = self._registry.snapshot() if self._registry is not None else {}
        return render_openmetrics(snapshot)

    def _report(self) -> dict[str, Any]:
        """Assemble the run's summary dict (deterministic, JSON-ready)."""
        cfg = self.config
        lat = np.asarray(self.latencies) if self.latencies else np.zeros(1)
        active = self.tenant_submitted > 0
        completed_active = self.tenant_completed[active]
        return {
            "tenants": cfg.tenants,
            "events": self.events_dispatched,
            "queries_submitted": self.queries_submitted,
            "queries_admitted": self.admission.admitted,
            "queries_rejected": self.admission.rejected,
            "queries_completed": self.queries_completed,
            "shed_queue": self.shed_queue,
            "shed_starved": self.shed_starved,
            "fallback_answers": self.fallback_answers,
            "widened_answers": self.widened_answers,
            "migrations": self.migrations,
            "qps": round(self.queries_completed / (cfg.duration_ms / 1000.0), 6),
            "p50_ms": round(float(np.percentile(lat, 50)), 6),
            "p95_ms": round(float(np.percentile(lat, 95)), 6),
            "p99_ms": round(float(np.percentile(lat, 99)), 6),
            "peak_workers": self.peak_workers,
            "scale_ups": self.autoscaler.scale_ups,
            "scale_downs": self.autoscaler.scale_downs,
            "fairness_min_completed": int(completed_active.min())
            if len(completed_active)
            else 0,
            "fairness_max_completed": int(completed_active.max())
            if len(completed_active)
            else 0,
        }


def run_service(config: ServeConfig, plan: FaultPlan | None = None) -> dict[str, Any]:
    """Run a :class:`JoinService` to completion on a private event loop.

    Returns the run report: tenant/query/shed accounting, virtual-time
    latency percentiles (``p50_ms``/``p95_ms``/``p99_ms``), throughput
    (``qps``), autoscaler activity (``peak_workers``, ``scale_ups``,
    ``scale_downs``) and fairness extremes of per-tenant completions.
    """
    return asyncio.run(JoinService(config, plan).run())
