"""``repro.serve`` — the long-running multi-tenant streaming join service.

The batch reproduction answers "is PECJ's compensation right"; this
package answers "does it hold up as a *service*": thousands of
simulated tenants submitting window-join queries over shared disordered
ingest, with admission control (:mod:`repro.serve.admission`),
key-sharded operator state (:mod:`repro.serve.shards`), per-shard
graceful degradation (reusing :mod:`repro.faults.degrade`), vertical
autoscaling from the engine cost model
(:mod:`repro.serve.autoscaler`) and checkpoint-based migration — all
orchestrated on an asyncio event loop over a virtual clock
(:mod:`repro.serve.service`), so every run replays byte-identically.
Live telemetry (:mod:`repro.serve.telemetry`) samples the run's
registry into ring time series, tracks per-tenant-class SLO error
budgets with burn-rate alerts, and audits every control-plane decision;
:meth:`JoinService.openmetrics` / :meth:`JoinService.telemetry_snapshot`
are the exporters.

Entry points: build a :class:`ServeConfig`, optionally a fault plan
(:func:`repro.faults.serve_load_plan`), and call :func:`run_service`.
The ``serve`` bench figure (``python -m repro.bench serve``) sweeps
tenancy and chaos intensity through the same path.
"""

from repro.serve.admission import AdmissionController, TenantQuota
from repro.serve.autoscaler import VerticalAutoscaler
from repro.serve.runs import RunStack, SortedRun, merge_sorted_runs
from repro.serve.service import JoinService, ServeConfig, run_service
from repro.serve.shards import ShardAnswer, ShardStore
from repro.serve.telemetry import ServeTelemetry, TelemetryConfig

__all__ = [
    "AdmissionController",
    "JoinService",
    "RunStack",
    "ServeConfig",
    "ServeTelemetry",
    "ShardAnswer",
    "ShardStore",
    "SortedRun",
    "TelemetryConfig",
    "TenantQuota",
    "VerticalAutoscaler",
    "merge_sorted_runs",
    "run_service",
]
