"""Live serving telemetry: sampling, SLOs and the control-plane audit log.

:class:`ServeTelemetry` is the glue between :class:`~repro.serve.service.JoinService`
and the observability substrate: one :class:`~repro.obs.TimeSeriesSampler`
sweeping the service's registry on a virtual-clock cadence, one
:class:`~repro.obs.SloTracker` classifying every admission decision and
query outcome into per-tenant-class error budgets with burn-rate alerts,
and one :class:`~repro.obs.AuditLog` recording every control-plane
decision.  The service calls the ``on_*`` hooks from its tick loop and
workers; every hook is a cheap no-op when telemetry is disabled, which
is what the equivalence test pins.

Each audited decision also bumps an ``audit.<kind>`` counter so the run
summary's conditional ``audit`` block mirrors the log's accounting —
the soak test reconciles both against the final report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro import obs
from repro.obs.audit import AuditLog
from repro.obs.slo import TENANT_CLASSES, SloPolicy, SloTracker, tenant_class
from repro.obs.timeseries import TimeSeriesSampler

__all__ = ["TelemetryConfig", "ServeTelemetry"]


@dataclass(frozen=True)
class TelemetryConfig:
    """Telemetry tunables of one service run.

    Attributes:
        enabled: Master switch — False makes every hook a no-op and the
            run bit-identical to a pre-telemetry service.
        sample_every_ms: Virtual-clock cadence of registry sweeps into
            the ring series.
        series_capacity: Per-series ring capacity (points retained).
        audit: Record control-plane decisions in the audit log (the
            ``audit.*`` counters follow this switch too).
        slo: Objectives, budgets and alerting tunables.
    """

    enabled: bool = True
    sample_every_ms: float = 20.0
    series_capacity: int = 256
    audit: bool = True
    slo: SloPolicy = field(default_factory=SloPolicy)


class ServeTelemetry:
    """The service's telemetry bundle: sampler + SLO tracker + audit log.

    Args:
        config: Telemetry tunables (:class:`TelemetryConfig`).
    """

    def __init__(self, config: TelemetryConfig | None = None):
        self.config = config or TelemetryConfig()
        self.enabled = self.config.enabled
        self.sampler = TimeSeriesSampler(
            sample_every_ms=self.config.sample_every_ms,
            capacity=self.config.series_capacity,
            enabled=self.enabled,
        )
        self.slo = SloTracker(self.config.slo, enabled=self.enabled)
        self.audit = AuditLog(enabled=self.enabled and self.config.audit)
        self._next_eval_ms = 0.0
        self._last_eval_ms: float | None = None
        #: Virtual time at which :meth:`on_tick` next has work to do —
        #: the service skips the call entirely before that, keeping the
        #: tick loop's telemetry cost to one float compare.
        self.next_due_ms = 0.0
        slo = self.config.slo
        self._completeness_min = slo.completeness_min
        self._latency_threshold = {
            cls: slo.latency_threshold_ms(cls) for cls in TENANT_CLASSES
        }

    # -- audit plumbing ----------------------------------------------------

    def _audit(self, kind: str, ts: float, **details) -> None:
        if not self.audit.enabled:
            return
        self.audit.emit(kind, ts, **details)
        obs.counter(f"audit.{kind}").inc()

    # -- control-plane hooks ----------------------------------------------

    def on_admission(self, tenant: int, ts: float, admitted: bool) -> None:
        """One admission decision: rejection-SLO sample + audit event."""
        if not self.enabled:
            return
        self.slo.record("rejection", tenant, bad=not admitted)
        if not admitted:
            self._audit("admission.reject", ts, tenant=tenant)

    def on_queue_shed(self, tenant: int, ts: float) -> None:
        """A query shed at the bounded tenant queue."""
        if not self.enabled:
            return
        self.slo.record("shed", tenant, bad=True)
        self._audit("queue.shed", ts, tenant=tenant)

    def on_query(
        self,
        tenant: int,
        shard: int,
        ts: float,
        latency_ms: float,
        value: float,
        completeness: float,
        shed: bool,
        fallback: bool,
        warm: bool,
    ) -> None:
        """One completed (or starved-shed) query outcome.

        Classifies the answer into the shed, completeness and (post
        warm-up) latency objectives; starved sheds are audited.
        """
        if not self.enabled:
            return
        self.slo.record("shed", tenant, bad=shed)
        if shed:
            self._audit("starved.shed", ts, tenant=tenant, shard=shard)
        else:
            bad_completeness = (
                not math.isfinite(value)
                or fallback
                or (
                    math.isfinite(completeness)
                    and completeness < self._completeness_min
                )
            )
            self.slo.record("completeness", tenant, bad=bad_completeness)
        if warm and math.isfinite(latency_ms):
            threshold = self._latency_threshold[tenant_class(tenant)]
            self.slo.record("latency", tenant, bad=latency_ms > threshold)

    def on_widen(self, shard: int, ts: float, widen_ms: float) -> None:
        """The shard controller changed its availability widening."""
        if not self.enabled:
            return
        self._audit("degrade.widen", ts, shard=shard, widen_ms=round(widen_ms, 6))

    def on_fallback_entered(self, shard: int, ts: float) -> None:
        """The shard controller dropped into fallback mode."""
        if not self.enabled:
            return
        self._audit("degrade.fallback", ts, shard=shard)

    def on_rescale(self, ts: float, from_workers: int, to_workers: int) -> None:
        """The autoscaler resized the pool at a barrier."""
        if not self.enabled:
            return
        self._audit(
            "autoscale.rescale", ts, from_workers=from_workers, to_workers=to_workers
        )

    def on_migrate(self, ts: float, shards: int) -> None:
        """The migration drill round-tripped every shard."""
        if not self.enabled:
            return
        self._audit("service.migrate", ts, shards=shards)

    def on_profile_poison(self, ts: float, shards: int) -> None:
        """A forced estimator-divergence event poisoned the profiles."""
        if not self.enabled:
            return
        self._audit("profile.poison", ts, shards=shards)

    def on_profile_repair(self, shard: int, ts: float) -> None:
        """A poisoned delay profile was restored from its checkpoint."""
        if not self.enabled:
            return
        self._audit("profile.repair", ts, shard=shard)

    # -- tick hook ---------------------------------------------------------

    def on_tick(self, now_ms: float) -> None:
        """Advance the SLO alert machines and the sampler when due.

        SLO evaluation rides the sampling cadence rather than the raw
        tick rate: burn windows span hundreds of virtual ms, so
        evaluating every ``sample_every_ms`` loses nothing while keeping
        the telemetry bundle out of the serve loop's hot path.  The
        evaluation (and its counter flush) runs before the registry
        sweep so the sampled series see this tick's totals.  Idempotent
        for ticks before :attr:`next_due_ms` — hot loops may use that
        attribute to skip the call entirely.
        """
        if not self.enabled:
            return
        if now_ms >= self._next_eval_ms:
            while self._next_eval_ms <= now_ms:
                self._next_eval_ms += self.config.sample_every_ms
            self.slo.evaluate(now_ms)
            self._last_eval_ms = now_ms
        self.sampler.sample_registry(now_ms)
        self.next_due_ms = min(self._next_eval_ms, self.sampler.next_sample_ms)

    def finalize(self, now_ms: float) -> None:
        """Settle telemetry at end of run: final evaluation and flush.

        The cadence throttle can leave the tail of the run unevaluated
        and sample deltas buffered; the service calls this once after
        its last tick so budgets, alerts and counters all account for
        every sample.
        """
        if not self.enabled:
            return
        if self._last_eval_ms != now_ms:
            self.slo.evaluate(now_ms)
            self._last_eval_ms = now_ms
        else:
            self.slo.flush()

    # -- export ------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready bundle: series, SLO summary, alert transitions, audit."""
        return {
            "enabled": self.enabled,
            "timeseries": self.sampler.snapshot(),
            "slo": self.slo.summary(),
            "alerts": list(self.slo.transitions),
            "audit_events": len(self.audit),
        }
