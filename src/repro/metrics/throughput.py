"""Throughput metric for the integrated (multi-threaded) evaluation.

Throughput is input tuples processed per second of (virtual) wall time —
the metric plotted in the paper's scaling study (Fig. 11c).
"""

from __future__ import annotations

__all__ = ["throughput_ktuples_per_s"]


def throughput_ktuples_per_s(num_tuples: int, makespan_ms: float) -> float:
    """Throughput in Ktuples/s given a tuple count and a makespan in ms.

    A zero makespan (degenerate empty run) reports zero rather than
    dividing by zero.
    """
    if makespan_ms <= 0.0:
        return 0.0
    return (num_tuples / makespan_ms)  # tuples/ms == Ktuples/s
