"""Accuracy metrics.

The paper's accuracy metric (Section 2.1) is the relative error of the
aggregated join output: ``epsilon = |O_opr - O_exp| / O_exp``.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro import obs

__all__ = [
    "relative_error",
    "bounded_window_error",
    "mean_relative_error",
    "summarize_errors",
]


def relative_error(observed: float, expected: float) -> float:
    """``|observed - expected| / expected``.

    A zero expected value with a zero observed value is a perfect answer
    (error 0); a zero expected value with a nonzero observed value is an
    unbounded miss, reported as ``inf``.
    """
    if expected == 0.0:
        return 0.0 if observed == 0.0 else math.inf
    return abs(observed - expected) / abs(expected)


def bounded_window_error(value: float, expected: float) -> float:
    """Per-window score: relative error with a bounded degenerate case.

    A window whose oracle is zero but whose answer is nonzero has an
    unbounded relative error; scoring it raw lets a single empty window
    dominate a run's mean.  Such degenerate windows are scored
    ``min(1.0, |value - expected|)`` instead — a full miss counts like a
    100% relative error, never more.  Every per-window scoring site
    (batch runner, engine simulator, streaming operators) routes through
    this helper so the semantics cannot drift between them; each
    degenerate window is counted in the ``error.degenerate_windows``
    metric.
    """
    err = relative_error(value, expected)
    if math.isinf(err):
        obs.counter("error.degenerate_windows").inc()
        return min(1.0, abs(value - expected))
    return err


def mean_relative_error(pairs: Iterable[tuple[float, float]]) -> float:
    """Mean of per-window relative errors over ``(observed, expected)`` pairs.

    Windows with an expected value of zero and a correct zero answer count
    as zero error; infinite errors propagate (they indicate a degenerate
    workload configuration the caller should fix).
    """
    errors = [relative_error(o, e) for o, e in pairs]
    if not errors:
        return 0.0
    return sum(errors) / len(errors)


def summarize_errors(errors: Sequence[float]) -> dict[str, float]:
    """Mean / median / max summary of a collection of relative errors."""
    if not errors:
        return {"mean": 0.0, "median": 0.0, "max": 0.0, "count": 0.0}
    ordered = sorted(errors)
    n = len(ordered)
    if n % 2:
        median = ordered[n // 2]
    else:
        median = 0.5 * (ordered[n // 2 - 1] + ordered[n // 2])
    return {
        "mean": sum(ordered) / n,
        "median": median,
        "max": ordered[-1],
        "count": float(n),
    }
