"""Evaluation metrics: relative error, latency percentiles, throughput."""

from repro.metrics.error import mean_relative_error, relative_error, summarize_errors
from repro.metrics.latency import LatencyTracker, p95, percentile
from repro.metrics.throughput import throughput_ktuples_per_s

__all__ = [
    "relative_error",
    "mean_relative_error",
    "summarize_errors",
    "LatencyTracker",
    "p95",
    "percentile",
    "throughput_ktuples_per_s",
]
