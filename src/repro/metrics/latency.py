"""Latency metrics.

Per the paper (Section 2.1): for every tuple contributing to an output
``O``, latency is ``l = tau_emit - tau_arrival`` and the headline number is
the 95th percentile ("95% l").  Percentiles follow the nearest-rank
convention so small samples behave predictably.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

__all__ = ["percentile", "p95", "LatencyTracker"]


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in [0, 100])."""
    if not samples:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(samples)
    if q == 0.0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]


def p95(samples: Sequence[float]) -> float:
    """The paper's headline "95% l" metric."""
    return percentile(samples, 95.0)


class LatencyTracker:
    """Accumulates per-tuple latency samples across windows.

    Join operators record, for every tuple that contributed to an emitted
    output, ``emit_time - arrival_time``.  The tracker aggregates those
    samples over a whole experiment run.
    """

    def __init__(self):
        self._samples: list[float] = []

    def record(self, emit_time: float, arrival_time: float) -> None:
        """Record one tuple's latency (clamped at zero)."""
        self._samples.append(max(0.0, emit_time - arrival_time))

    def record_many(self, emit_time: float, arrival_times: Iterable[float]) -> None:
        """Record latencies for every arrival against one emit time."""
        for a in arrival_times:
            self.record(emit_time, a)

    def extend(self, samples: Iterable[float]) -> None:
        """Merge raw latency samples (e.g. from another tracker)."""
        for s in samples:
            self._samples.append(max(0.0, float(s)))

    @property
    def samples(self) -> Sequence[float]:
        return self._samples

    @property
    def count(self) -> int:
        return len(self._samples)

    def p95(self) -> float:
        return p95(self._samples)

    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def max(self) -> float:
        return max(self._samples) if self._samples else 0.0
