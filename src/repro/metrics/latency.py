"""Latency metrics.

Per the paper (Section 2.1): for every tuple contributing to an output
``O``, latency is ``l = tau_emit - tau_arrival`` and the headline number is
the 95th percentile ("95% l").  Percentiles follow the nearest-rank
convention so small samples behave predictably.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

from repro import obs

__all__ = ["percentile", "p95", "LatencyTracker"]


def percentile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``samples`` (``q`` in [0, 100])."""
    if not samples:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be within [0, 100]")
    ordered = sorted(samples)
    if q == 0.0:
        return ordered[0]
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[rank - 1]


def p95(samples: Sequence[float]) -> float:
    """The paper's headline "95% l" metric."""
    return percentile(samples, 95.0)


class LatencyTracker:
    """Accumulates per-tuple latency samples across windows.

    Join operators record, for every tuple that contributed to an emitted
    output, ``emit_time - arrival_time``.  The tracker aggregates those
    samples over a whole experiment run.

    A negative sample means a tuple was emitted before it arrived — a
    clock-skew or scheduling bug upstream.  Percentiles still clamp such
    samples to zero (so one bad clock cannot produce nonsense latency
    summaries), but each occurrence is counted in
    :attr:`negative_samples` and in the ``latency.negative_samples``
    metric so the bug is detectable instead of silently hidden.
    """

    def __init__(self):
        self._samples: list[float] = []
        #: Count of emit-before-arrival samples seen (clamped to 0 in the
        #: percentile data but never silently ignored).
        self.negative_samples = 0

    def _clamp(self, latency: float) -> float:
        if latency < 0.0:
            self.negative_samples += 1
            obs.counter("latency.negative_samples").inc()
            return 0.0
        return latency

    def record(self, emit_time: float, arrival_time: float) -> None:
        """Record one tuple's latency (clamped at zero, see above)."""
        self._samples.append(self._clamp(emit_time - arrival_time))

    def record_many(self, emit_time: float, arrival_times: Iterable[float]) -> None:
        """Record latencies for every arrival against one emit time."""
        for a in arrival_times:
            self.record(emit_time, a)

    def extend(self, samples: Iterable[float]) -> None:
        """Merge raw latency samples (e.g. from another tracker)."""
        for s in samples:
            self._samples.append(self._clamp(float(s)))

    @property
    def samples(self) -> Sequence[float]:
        """All recorded latency samples (ms), in insertion order."""
        return self._samples

    @property
    def count(self) -> int:
        """Number of recorded samples."""
        return len(self._samples)

    def p95(self) -> float:
        """95th-percentile latency (ms)."""
        return p95(self._samples)

    def mean(self) -> float:
        """Mean latency (ms)."""
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def max(self) -> float:
        """Maximum latency (ms)."""
        return max(self._samples) if self._samples else 0.0
