"""Push-based streaming join operators.

The batch runner replays a finite segment for experiments; these classes
are the deployable form: tuples are **pushed** one at a time in arrival
order, windows emit as the clock passes their cutoff, and state is
finalized and evicted once the delay horizon guarantees completeness.

    op = StreamingPECJ(window_length=10.0, omega=10.0)
    for t in arrival_ordered_tuples:
        for emission in op.push(t):
            handle(emission)          # emitted at cutoff, compensated
    op.finish()
    print(op.scored)                  # per-window error vs finalized truth

Three operators share the machinery:

* :class:`StreamingWMJ` — watermark-style: answers from whatever was
  ingested by the cutoff;
* :class:`StreamingKSJ` — the same, behind a real heap-based k-slack
  reorder buffer (tuples the buffer still holds at the cutoff are missed,
  reproducing KSJ's completeness/latency tradeoff);
* :class:`StreamingPECJ` — proactive compensation: the full PECJ
  estimation flow (delay profile, Eq. 9 / additive blends, delay-shape
  context, delayed ground-truth feedback) on incremental state.
"""

from __future__ import annotations

import collections
import math
from dataclasses import dataclass

import numpy as np

from repro.obs import trace
from repro.core.compensation import compensate
from repro.core.delay_profile import DelayProfile
from repro.core.pecj import make_estimator
from repro.joins.arrays import AggKind
from repro.metrics.error import bounded_window_error
from repro.streaming.kslack import KSlackBuffer
from repro.streaming.state import WindowJoinState
from repro.streams.tuples import StreamTuple

__all__ = [
    "WindowEmission",
    "ScoredWindow",
    "StreamingWMJ",
    "StreamingKSJ",
    "StreamingPECJ",
]


@dataclass(frozen=True, slots=True)
class WindowEmission:
    """One window's output, released at its cutoff."""

    window_start: float
    window_end: float
    value: float
    emit_time: float
    observed: int
    #: 95% credible interval (PECJ only; None otherwise).
    interval: tuple[float, float] | None = None


@dataclass(frozen=True, slots=True)
class ScoredWindow:
    """An emission scored against the finalized (complete) window."""

    window_start: float
    value: float
    truth: float
    error: float


class _StreamingBase:
    """Shared clockwork: window states, emission, finalization, eviction.

    Args:
        window_length: ``|W|`` in ms.
        omega: Emission cutoff from each window's start.
        agg: Output aggregation.
        horizon_ms: Age at which a window is treated as complete and
            evicted; ``None`` derives it from the observed delays.
        num_buckets: Sub-interval resolution of the per-window state.
    """

    name = "streaming-base"

    def __init__(
        self,
        window_length: float,
        omega: float,
        agg: AggKind = AggKind.COUNT,
        horizon_ms: float | None = None,
        num_buckets: int = 10,
    ):
        if window_length <= 0 or omega <= 0:
            raise ValueError("window_length and omega must be positive")
        self.window_length = window_length
        self.omega = omega
        self.agg = agg
        self.fixed_horizon = horizon_ms
        self.num_buckets = num_buckets
        self.clock = -math.inf
        self._states: dict[int, WindowJoinState] = {}
        self._emitted: dict[int, WindowEmission] = {}
        self._next_emit: int | None = None
        self._next_final: int | None = None
        #: Emissions scored against finalized windows, in window order.
        self.scored: list[ScoredWindow] = []
        #: Tuples that arrived after their window was already finalized.
        self.dropped_late = 0
        self._max_widx: int | None = None
        # Finalization involves the delay horizon, which can be costly to
        # recompute; check at most once per window of clock progress.
        self._next_final_check = -math.inf

    # -- hooks -------------------------------------------------------------

    def _emit_value(
        self, state: WindowJoinState, cutoff: float
    ) -> tuple[float, tuple[float, float] | None, float]:
        """Return (value, credible interval, extra emission delay)."""
        return state.value(self.agg), None, 0.0

    def _on_ingest(self, t: StreamTuple) -> None:
        """Called for every tuple accepted into a window."""

    def _on_finalize(self, widx: int, state: WindowJoinState) -> None:
        """Called when a window is complete, before eviction."""

    def _horizon(self) -> float:
        return self.fixed_horizon if self.fixed_horizon is not None else 0.0

    # -- ingestion -----------------------------------------------------------

    def _widx(self, event_time: float) -> int:
        return int(math.floor(event_time / self.window_length))

    def _state_for(self, event_time: float) -> WindowJoinState | None:
        w = self._widx(event_time)
        if self._next_final is not None and w < self._next_final:
            # Before anything has been emitted the cursors may still move
            # back (stream start under disorder: an older window's tuple
            # can show up after a newer window opened).  After the first
            # emission the grid is locked and older tuples are late.
            untouched = (
                self._next_final == self._next_emit
                and not self._emitted
                and w * self.window_length + self.omega > self.clock
            )
            if untouched:
                self._next_emit = self._next_final = w
            else:
                self.dropped_late += 1
                return None
        state = self._states.get(w)
        if state is None:
            start = w * self.window_length
            state = self._states[w] = WindowJoinState(
                start, start + self.window_length, self.num_buckets
            )
            if self._next_emit is None:
                self._next_emit = w
                self._next_final = w
        return state

    def _ingest(self, t: StreamTuple) -> None:
        state = self._state_for(t.event_time)
        if state is not None:
            state.add(t)
            self._on_ingest(t)
            w = self._widx(t.event_time)
            if self._max_widx is None or w > self._max_widx:
                self._max_widx = w

    def push(self, t: StreamTuple) -> list[WindowEmission]:
        """Ingest one tuple (arrival order) and return due emissions."""
        if t.arrival_time < self.clock - 1e-9:
            raise ValueError(
                f"arrival clock went backwards: {t.arrival_time} < {self.clock}"
            )
        emissions = self.advance(t.arrival_time)
        self._ingest(t)
        return emissions

    # -- clockwork -------------------------------------------------------------

    def advance(self, now: float) -> list[WindowEmission]:
        """Advance the virtual clock, emitting and finalizing due windows."""
        self.clock = max(self.clock, now)
        emissions: list[WindowEmission] = []
        if self._next_emit is None:
            return emissions
        # Emit windows whose cutoff has passed.  Never emit past the last
        # window that received data: the stream may simply have ended, and
        # fabricating outputs for windows after its end is meaningless.
        while (
            self._next_emit * self.window_length + self.omega <= self.clock
            and self._max_widx is not None
            and self._next_emit <= self._max_widx
        ):
            w = self._next_emit
            start = w * self.window_length
            state = self._states.get(w) or WindowJoinState(
                start, start + self.window_length, self.num_buckets
            )
            cutoff = start + self.omega
            value, interval, extra = self._emit_value(state, cutoff)
            emission = WindowEmission(
                window_start=start,
                window_end=start + self.window_length,
                value=value,
                emit_time=cutoff + extra,
                observed=state.n_r + state.n_s,
                interval=interval,
            )
            emissions.append(emission)
            self._emitted[w] = emission
            if trace.is_tracing():
                trace.instant(
                    "streaming.emit", emission.emit_time,
                    cat="window", track=f"streaming.{self.name}",
                    args={
                        "window_start": float(start),
                        "value": float(value),
                        "observed": int(emission.observed),
                    },
                )
            self._next_emit += 1
        # Finalize windows older than the delay horizon.  The horizon
        # recomputation is throttled: eviction may lag by one window,
        # which only delays scoring, never correctness.
        if self.clock < self._next_final_check and not emissions:
            return emissions
        self._next_final_check = self.clock + self.window_length
        horizon = self._horizon()
        while (
            self._next_final is not None
            and self._next_final < self._next_emit
            and (self._next_final + 1) * self.window_length + horizon <= self.clock
        ):
            w = self._next_final
            state = self._states.pop(w, None)
            emission = self._emitted.pop(w, None)
            if state is not None:
                self._on_finalize(w, state)
            if emission is not None:
                if state is None:
                    # The window never received a tuple: truth is empty.
                    start = w * self.window_length
                    state = WindowJoinState(
                        start, start + self.window_length, self.num_buckets
                    )
                truth = state.value(self.agg)
                # Shared degenerate-window semantics: a zero-truth window
                # with a nonzero (compensated) answer scores at most 1.
                err = bounded_window_error(emission.value, truth)
                self.scored.append(
                    ScoredWindow(state.start, emission.value, truth, err)
                )
            self._next_final += 1
        return emissions

    def finish(self) -> list[WindowEmission]:
        """Flush: emit and finalize everything still pending."""
        return self.advance(self.clock + self.omega + self._horizon() + 2 * self.window_length)

    @property
    def live_windows(self) -> int:
        """Number of window states currently held (memory bound)."""
        return len(self._states)

    @property
    def mean_error(self) -> float:
        if not self.scored:
            return 0.0
        return sum(s.error for s in self.scored) / len(self.scored)


class StreamingWMJ(_StreamingBase):
    """Watermark-join: answers from everything ingested by the cutoff."""

    name = "StreamingWMJ"

    def __init__(self, window_length: float, omega: float, agg: AggKind = AggKind.COUNT,
                 horizon_ms: float | None = None):
        super().__init__(window_length, omega, agg, horizon_ms)
        self._max_delay = 0.0

    def _on_ingest(self, t: StreamTuple) -> None:
        self._max_delay = max(self._max_delay, t.delay)

    def _horizon(self) -> float:
        if self.fixed_horizon is not None:
            return self.fixed_horizon
        return self._max_delay * 1.05 + self.window_length


class StreamingKSJ(StreamingWMJ):
    """K-slack join: a reorder buffer precedes the window states.

    Tuples still held by the buffer at a window's cutoff are missed —
    exactly the k-slack accuracy/latency tradeoff.  ``slack`` defaults to
    ``omega`` (the paper ties the tuning knob to the buffer's control).
    """

    name = "StreamingKSJ"

    def __init__(
        self,
        window_length: float,
        omega: float,
        agg: AggKind = AggKind.COUNT,
        slack: float | None = None,
        horizon_ms: float | None = None,
    ):
        super().__init__(window_length, omega, agg, horizon_ms)
        self._adaptive_slack = slack is None
        self.buffer = KSlackBuffer(0.0 if slack is None else slack)

    def push(self, t: StreamTuple) -> list[WindowEmission]:
        """Feed one arriving tuple; join and emit whatever it releases."""
        if t.arrival_time < self.clock - 1e-9:
            raise ValueError(
                f"arrival clock went backwards: {t.arrival_time} < {self.clock}"
            )
        if self._adaptive_slack:
            # Adaptive k-slack (Ji et al.): K tracks the largest disorder
            # seen so far.
            self.buffer.slack = max(self.buffer.slack, t.delay)
        emissions = self.advance(t.arrival_time)
        for released in self.buffer.push(t):
            self._ingest(released)
        return emissions

    def _emit_value(self, state: WindowJoinState, cutoff: float):
        # The join consults the reorder buffer at emission: tuples that
        # have arrived but are still being ordered join the answer (this
        # is what keeps KSJ's completeness aligned with WMJ's at equal
        # omega, per the paper's Section 6.3 observation).
        pending = self.buffer.peek_range(state.start, state.end)
        if pending:
            state = state.clone()
            for t in pending:
                state.add(t)
        return state.value(self.agg), None, 0.0

    def finish(self) -> list[WindowEmission]:
        """Flush the reorder buffer and join the stragglers (end of stream)."""
        for released in self.buffer.flush():
            self._ingest(released)
        return super().finish()


class StreamingPECJ(_StreamingBase):
    """Push-based PECJ: the full estimation flow on incremental state.

    Mirrors :class:`repro.core.pecj.PECJoin` — online delay profile,
    per-bucket rate observations with distortion corrections, weighted
    selectivity/payload blending, delay-shape context and delayed
    ground-truth feedback for learning backends — but consumes pushed
    tuples instead of a materialised batch.
    """

    name = "StreamingPECJ"

    def __init__(
        self,
        window_length: float,
        omega: float,
        agg: AggKind = AggKind.COUNT,
        backend: str = "aema",
        min_completeness: float = 0.05,
        finalize_quantile: float = 0.995,
        learning_inference_ms: float | None = None,
        seed: int = 0,
    ):
        super().__init__(window_length, omega, agg)
        self.backend = backend
        self.min_completeness = min_completeness
        self.finalize_quantile = finalize_quantile
        if learning_inference_ms is None:
            learning_inference_ms = 90.0 if backend == "mlp" else 0.0
        self.learning_inference_ms = learning_inference_ms
        self.profile = DelayProfile(initial_span=max(8.0, omega))
        self.rate_r = make_estimator(backend, seed)
        self.rate_s = make_estimator(backend, seed)
        self.sigma = make_estimator(backend, seed)
        self.alpha = make_estimator(backend, seed)
        self._matches_ema = 0.0
        self._m_ema: float | None = None
        self._m_rel_var = 0.04
        #: (obs_r, obs_s, c_bar, m_hat) snapshots for completeness feedback.
        self._emit_obs: dict[int, tuple[int, int, float, float]] = {}
        #: Recent (event_time, delay) pairs for the delay-shape context.
        self._recent_delays: collections.deque[tuple[float, float]] = (
            collections.deque(maxlen=4096)
        )
        # Per-push profile updates would allocate one array per tuple;
        # batch them and flush before the profile is queried.
        self._pending_delays: list[float] = []

    # -- observation machinery ----------------------------------------------

    def _on_ingest(self, t: StreamTuple) -> None:
        delay = max(t.delay, 0.0)
        self._pending_delays.append(delay)
        self._recent_delays.append((t.event_time, delay))

    def _flush_delays(self) -> None:
        if self._pending_delays:
            self.profile.update(np.asarray(self._pending_delays))
            self._pending_delays.clear()

    def _horizon(self) -> float:
        self._flush_delays()
        return self.profile.horizon(self.finalize_quantile) + self.window_length

    def _delay_context(self, start: float, end: float, now: float):
        age = now - 0.5 * (start + end)
        c_assumed = self.profile.completeness(age)
        neutral = (c_assumed, 1.0, 1.0, 1.0)
        if not self.profile.is_warm or c_assumed <= 0.02:
            return neutral
        span_start = start - 4.0 * self.window_length
        delays = [d for e, d in self._recent_delays if span_start <= e < end]
        if len(delays) < 10:
            return neutral
        delays = np.asarray(delays)
        ratios = []
        for q in (0.25, 0.5, 0.75):
            a_q = self.profile.quantile_age(q * c_assumed)
            if a_q <= 0.0:
                ratios.append(1.0)
                continue
            ratios.append(min(max(float(np.mean(delays <= a_q)) / q, 0.0), 2.5))
        return (c_assumed, *ratios)

    def _emit_value(self, state: WindowJoinState, cutoff: float):
        self._flush_delays()
        extra = self.learning_inference_ms
        if not (self.profile.is_warm and self.rate_r.is_warm and self.rate_s.is_warm):
            return state.value(self.agg), None, extra
        now = cutoff
        widx = self._widx(state.start)
        context = self._delay_context(state.start, state.end, now)
        for est in (self.rate_r, self.rate_s, self.sigma, self.alpha):
            est.set_context(context)

        n_hat_r, n_hat_s = self._rate_estimates(state, now, widx)

        if state.n_r > 0 and state.n_s > 0:
            if self._matches_ema > 0.0:
                w_sigma = 60.0 * min(state.matches / self._matches_ema, 1.2)
            else:
                w_sigma = 1.0
            sigma_hat = self.sigma.blend(
                [state.selectivity], [1.0], tag=widx, weights=[max(w_sigma, 0.2)]
            )
        else:
            sigma_hat = self.sigma.estimate()

        alpha_hat = 0.0
        if self.agg is not AggKind.COUNT:
            if state.matches > 0:
                w_alpha = max(min(state.matches**0.5, 40.0), 0.2)
                alpha_hat = self.alpha.blend(
                    [state.alpha_r], [1.0], tag=widx, weights=[w_alpha]
                )
            else:
                alpha_hat = self.alpha.estimate()

        est = compensate(self.agg, n_hat_r, n_hat_s, sigma_hat, alpha_hat)
        return est.value, None, extra

    def _rate_estimates(self, state: WindowJoinState, now: float, widx: int):
        bucket_len = state.length / state.num_buckets
        ages = [
            now - (state.start + (b + 0.5) * bucket_len)
            for b in range(state.num_buckets)
        ]
        completeness = [self.profile.completeness(a) for a in ages]

        if self.rate_r.completeness_factor() is not None:
            # Learning path: additive fill at an inverse-variance rate.
            mu_r = max(self.rate_r.blend([], [], tag=widx), 0.0)
            mu_s = max(self.rate_s.blend([], [], tag=widx), 0.0)
            m_r = self.rate_r.completeness_factor() or 1.0
            m_s = self.rate_s.completeness_factor() or 1.0
            m_hat = 0.5 * (m_r + m_s)
            if self._m_ema is not None:
                m_hat = 0.5 * self._m_ema + 0.5 * m_hat
            self._m_ema = m_hat
            missing = sum(
                (1.0 - min(max(m_hat * c, 0.0), 1.0)) * bucket_len
                for c in completeness
            )
            c_bar = sum(completeness) / len(completeness)
            self._emit_obs[widx] = (state.n_r, state.n_s, c_bar, m_hat)
            c_hat_bar = 1.0 - missing / state.length
            out = []
            for n_obs, mu, est in (
                (state.n_r, mu_r, self.rate_r),
                (state.n_s, mu_s, self.rate_s),
            ):
                fill = mu
                if c_hat_bar >= 0.05:
                    est1 = n_obs / (c_hat_bar * state.length)
                    rel_var1 = (1.0 - c_hat_bar) / (c_hat_bar * max(n_obs, 1.0))
                    rel_var1 += self._m_rel_var
                    sd2 = getattr(est, "residual_std", lambda: 0.0)()
                    rel_var2 = (sd2 / mu) ** 2 if mu > 0 else 1.0
                    rel_var2 = min(max(rel_var2, 1e-4), 1.0)
                    w1 = rel_var2 / (rel_var1 + rel_var2)
                    fill = w1 * est1 + (1.0 - w1) * mu
                out.append(n_obs + fill * missing)
            return out[0], out[1]

        # Analytical path: Eq. 9 blend over bucket observations.
        xs_r, xs_s, zs = [], [], []
        for (cnt_r, cnt_s), c in zip(state.buckets, completeness):
            if c < self.min_completeness:
                continue
            xs_r.append(cnt_r / bucket_len)
            xs_s.append(cnt_s / bucket_len)
            zs.append(1.0 / c)
        mu_r = self.rate_r.blend(xs_r, zs, tag=widx)
        mu_s = self.rate_s.blend(xs_s, zs, tag=widx)
        n_hat_r = max(mu_r * state.length, float(state.n_r))
        n_hat_s = max(mu_s * state.length, float(state.n_s))
        return n_hat_r, n_hat_s

    def _on_finalize(self, widx: int, state: WindowJoinState) -> None:
        bucket_len = state.length / state.num_buckets
        for cnt_r, cnt_s in state.buckets:
            self.rate_r.observe(cnt_r / bucket_len, 1.0)
            self.rate_s.observe(cnt_s / bucket_len, 1.0)
        if state.n_r > 0 and state.n_s > 0:
            self.sigma.observe(state.selectivity, 1.0)
            self.sigma.feedback(widx, state.selectivity)
        if state.matches > 0:
            self.alpha.observe(state.alpha_r, 1.0)
            self.alpha.feedback(widx, state.alpha_r)
            if self._matches_ema <= 0.0:
                self._matches_ema = state.matches
            else:
                self._matches_ema = 0.95 * self._matches_ema + 0.05 * state.matches
        self.rate_r.feedback(widx, state.n_r / state.length)
        self.rate_s.feedback(widx, state.n_s / state.length)
        emitted = self._emit_obs.pop(widx, None)
        if emitted is not None:
            obs_r, obs_s, c_bar, m_hat = emitted
            if c_bar > 0.0:
                if state.n_r > 0:
                    m_true = (obs_r / state.n_r) / c_bar
                    self.rate_r.feedback_completeness(widx, m_true)
                    if m_hat > 0.0:
                        rel = (m_true - m_hat) / m_hat
                        self._m_rel_var = 0.97 * self._m_rel_var + 0.03 * rel * rel
                if state.n_s > 0:
                    self.rate_s.feedback_completeness(
                        widx, (obs_s / state.n_s) / c_bar
                    )
        self.profile.decay_step()
