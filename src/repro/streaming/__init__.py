"""Push-based streaming operators: the deployable form of the joins."""

from repro.streaming.kslack import KSlackBuffer
from repro.streaming.operators import (
    ScoredWindow,
    StreamingKSJ,
    StreamingPECJ,
    StreamingWMJ,
    WindowEmission,
)
from repro.streaming.state import WindowJoinState

__all__ = [
    "KSlackBuffer",
    "WindowJoinState",
    "WindowEmission",
    "ScoredWindow",
    "StreamingWMJ",
    "StreamingKSJ",
    "StreamingPECJ",
]
