"""A real k-slack reordering buffer (heap-based).

The batch layer models KSJ's buffer through its *cost*; this is the
buffer itself, as the KSJ baseline [18] describes it: arriving tuples
enter a min-heap ordered by event time and a tuple is released once the
stream's progress guarantees nothing older can still arrive — i.e. when
the maximum event time seen so far exceeds the tuple's event time plus
the slack ``K``.  Output is therefore sorted by event time whenever the
true disorder stays within ``K``; tuples arriving later than that bound
are *asynchronous* (the paper's term) and are released immediately,
out of order.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Iterable

from repro import obs
from repro.obs import trace
from repro.streams.tuples import StreamTuple

__all__ = ["KSlackBuffer"]


class KSlackBuffer:
    """Min-heap k-slack reorder buffer.

    Args:
        slack: ``K`` in ms — how much event-time disorder the buffer
            absorbs.  Larger K reorders more but holds tuples longer.
    """

    def __init__(self, slack: float):
        if slack < 0:
            raise ValueError("slack must be non-negative")
        self.slack = slack
        self._heap: list[tuple[float, int, StreamTuple]] = []
        self._tie = itertools.count()
        self._watermark = -float("inf")  # max event time seen
        self.asynchronous_releases = 0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def watermark(self) -> float:
        """Maximum event time observed so far."""
        return self._watermark

    def push(self, t: StreamTuple) -> list[StreamTuple]:
        """Insert one tuple; return every tuple this releases, in order.

        A tuple older than the watermark minus the slack would have been
        released already — it is *asynchronous* and passes straight
        through (counted in :attr:`asynchronous_releases`).
        """
        if t.event_time <= self._watermark - self.slack:
            self.asynchronous_releases += 1
            obs.counter("kslack.asynchronous_releases").inc()
            if trace.is_tracing():
                trace.instant(
                    "kslack.async_release", t.arrival_time,
                    cat="buffer", track="kslack",
                    args={
                        "event_time": float(t.event_time),
                        "watermark": float(self._watermark),
                        "slack": float(self.slack),
                    },
                )
            return [t]
        self._watermark = max(self._watermark, t.event_time)
        heapq.heappush(self._heap, (t.event_time, next(self._tie), t))
        return self._drain_ready()

    def set_slack(self, slack: float) -> list[StreamTuple]:
        """Retune ``K`` mid-stream; return any tuples the change releases.

        Growing the slack simply holds future tuples longer.  Shrinking
        it moves the release bound forward, so tuples already buffered
        may become ready *immediately* — they are drained and returned
        here rather than sitting until the next push (which might never
        come on a stalled stream).
        """
        if slack < 0:
            raise ValueError("slack must be non-negative")
        old, self.slack = self.slack, slack
        obs.counter("kslack.slack_changes").inc()
        if trace.is_tracing():
            trace.instant(
                "kslack.set_slack", max(self._watermark, 0.0),
                cat="buffer", track="kslack",
                args={"old": float(old), "new": float(slack)},
            )
        if slack < old:
            return self._drain_ready()
        return []

    def push_many(self, tuples: Iterable[StreamTuple]) -> list[StreamTuple]:
        """Push tuples in arrival order; return all releases, concatenated."""
        out: list[StreamTuple] = []
        for t in tuples:
            out.extend(self.push(t))
        return out

    def _drain_ready(self) -> list[StreamTuple]:
        released: list[StreamTuple] = []
        bound = self._watermark - self.slack
        while self._heap and self._heap[0][0] <= bound:
            released.append(heapq.heappop(self._heap)[2])
        if released and trace.is_tracing():
            trace.instant(
                "kslack.release", self._watermark,
                cat="buffer", track="kslack",
                args={"count": len(released), "buffered": len(self._heap)},
            )
        return released

    def flush(self) -> list[StreamTuple]:
        """Release everything still buffered (end of stream)."""
        out = [heapq.heappop(self._heap)[2] for _ in range(len(self._heap))]
        return out

    def peek_range(self, start: float, end: float) -> list[StreamTuple]:
        """Buffered tuples with event time in ``[start, end)``, unreleased.

        An emitting join consults the buffer for in-window tuples that
        have arrived but are still being reordered.
        """
        return [t for _, _, t in self._heap if start <= t.event_time < end]
