"""Incremental per-window join state for the push-based operators.

The batch layer (:mod:`repro.joins.arrays`) recomputes window aggregates
from columnar arrays; a deployed operator cannot — it sees one tuple at a
time and must maintain the join incrementally.  ``WindowJoinState`` is
that structure: a per-key symmetric hash table from which every aggregate
the compensation formulas need (``n_R``, ``n_S``, matches, joined-R
payload sum) falls out in O(1) per arriving tuple:

* an arriving R tuple with key ``k`` joins the ``cnt_S[k]`` S tuples
  already present — matches grow by ``cnt_S[k]`` and the joined-R payload
  sum by ``v * cnt_S[k]``;
* an arriving S tuple joins the ``cnt_R[k]`` R tuples present — matches
  grow by ``cnt_R[k]`` and the payload sum by ``sum_Rv[k]`` (every
  present R tuple gains one more join partner).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.joins.arrays import AggKind
from repro.streams.tuples import Side, StreamTuple

__all__ = ["WindowJoinState"]


@dataclass
class _KeyEntry:
    """Symmetric hash-table entry for one join key."""

    cnt_r: int = 0
    cnt_s: int = 0
    sum_rv: float = 0.0


@dataclass
class WindowJoinState:
    """Incrementally maintained join aggregates of one window.

    Attributes:
        start, end: The window's event-time bounds.
        buckets: Per-sub-interval ``[cnt_r, cnt_s]`` observation counts
            (what PECJ's rate estimation consumes).
    """

    start: float
    end: float
    num_buckets: int = 10
    _keys: dict[int, _KeyEntry] = field(default_factory=dict)
    n_r: int = 0
    n_s: int = 0
    matches: float = 0.0
    sum_r: float = 0.0
    buckets: list[list[int]] = field(init=False)
    #: Arrival times of ingested tuples (latency accounting).
    arrivals: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        self.buckets = [[0, 0] for _ in range(self.num_buckets)]

    @property
    def length(self) -> float:
        """Number of tuples currently stored."""
        return self.end - self.start

    def contains(self, event_time: float) -> bool:
        """Whether any stored tuple carries the given key."""
        return self.start <= event_time < self.end

    def add(self, t: StreamTuple) -> None:
        """Ingest one tuple (must belong to this window)."""
        if not self.contains(t.event_time):
            raise ValueError(
                f"event {t.event_time} outside window [{self.start}, {self.end})"
            )
        entry = self._keys.get(t.key)
        if entry is None:
            entry = self._keys[t.key] = _KeyEntry()
        if t.side is Side.R:
            self.n_r += 1
            self.matches += entry.cnt_s
            self.sum_r += t.payload * entry.cnt_s
            entry.cnt_r += 1
            entry.sum_rv += t.payload
        else:
            self.n_s += 1
            self.matches += entry.cnt_r
            self.sum_r += entry.sum_rv
            entry.cnt_s += 1
        bucket = min(
            int((t.event_time - self.start) / self.length * self.num_buckets),
            self.num_buckets - 1,
        )
        self.buckets[bucket][0 if t.side is Side.R else 1] += 1
        self.arrivals.append(t.arrival_time)

    @property
    def selectivity(self) -> float:
        """Empirical join selectivity ``sigma`` of the stored window."""
        denom = self.n_r * self.n_s
        return self.matches / denom if denom > 0 else 0.0

    @property
    def alpha_r(self) -> float:
        """Fraction of stored tuples that belong to stream R."""
        return self.sum_r / self.matches if self.matches > 0 else 0.0

    def value(self, agg: AggKind) -> float:
        """The (uncompensated) join output over the ingested tuples."""
        if agg is AggKind.COUNT:
            return float(self.matches)
        if agg is AggKind.SUM:
            return float(self.sum_r)
        if agg is AggKind.AVG:
            return self.alpha_r
        raise ValueError(f"unknown aggregation {agg!r}")

    @property
    def distinct_keys(self) -> int:
        """Number of distinct join keys stored."""
        return len(self._keys)

    def clone(self) -> "WindowJoinState":
        """Deep-enough copy for what-if evaluation (emission peeks)."""
        other = WindowJoinState(self.start, self.end, self.num_buckets)
        other._keys = {k: _KeyEntry(e.cnt_r, e.cnt_s, e.sum_rv) for k, e in self._keys.items()}
        other.n_r = self.n_r
        other.n_s = self.n_s
        other.matches = self.matches
        other.sum_r = self.sum_r
        other.buckets = [list(b) for b in self.buckets]
        other.arrivals = list(self.arrivals)
        return other
