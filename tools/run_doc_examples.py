#!/usr/bin/env python
"""Execute the documentation's code: README snippets and ``examples/``.

Documentation that CI never runs rots silently.  This tool keeps it
honest:

* every fenced ````python`` block in ``README.md`` is executed (blocks
  can be skipped by adding ``<!-- doc-examples: skip -->`` on the line
  directly above the fence);
* every ``examples/*.py`` script is executed.

Each unit runs in its own interpreter with ``PYTHONPATH=src`` from the
repository root, exactly as the docs tell a reader to run it.  Any
nonzero exit fails the tool (and the CI job that wraps it)::

    python tools/run_doc_examples.py            # run everything
    python tools/run_doc_examples.py --list     # show what would run
"""

from __future__ import annotations

import argparse
import os
import pathlib
import re
import subprocess
import sys
import tempfile
import time

ROOT = pathlib.Path(__file__).resolve().parent.parent
SKIP_MARK = "doc-examples: skip"
FENCE = re.compile(r"^```python\s*$")


def readme_snippets() -> list[tuple[str, str]]:
    """``(label, source)`` for each runnable README python block."""
    lines = (ROOT / "README.md").read_text().splitlines()
    snippets: list[tuple[str, str]] = []
    i = 0
    while i < len(lines):
        if FENCE.match(lines[i]):
            skip = i > 0 and SKIP_MARK in lines[i - 1]
            body: list[str] = []
            i += 1
            while i < len(lines) and lines[i].rstrip() != "```":
                body.append(lines[i])
                i += 1
            if not skip:
                label = f"README.md python block #{len(snippets) + 1}"
                snippets.append((label, "\n".join(body) + "\n"))
        i += 1
    return snippets


def example_scripts() -> list[pathlib.Path]:
    """Every runnable script under ``examples/``."""
    return sorted((ROOT / "examples").glob("*.py"))


def run(label: str, argv: list[str]) -> bool:
    env = dict(os.environ, PYTHONPATH=str(ROOT / "src"))
    t0 = time.time()
    proc = subprocess.run(argv, cwd=ROOT, env=env,
                          capture_output=True, text=True)
    status = "ok" if proc.returncode == 0 else f"FAIL ({proc.returncode})"
    print(f"{status:>9}  {time.time() - t0:6.1f}s  {label}")
    if proc.returncode != 0:
        sys.stdout.write(proc.stdout[-2000:])
        sys.stderr.write(proc.stderr[-4000:])
    return proc.returncode == 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--list", action="store_true",
                        help="list the units without executing them")
    args = parser.parse_args(argv)

    snippets = readme_snippets()
    scripts = example_scripts()
    if args.list:
        for label, _ in snippets:
            print(label)
        for path in scripts:
            print(path.relative_to(ROOT))
        return 0

    ok = True
    with tempfile.TemporaryDirectory() as tmp:
        for idx, (label, source) in enumerate(snippets):
            path = pathlib.Path(tmp) / f"readme_block_{idx}.py"
            path.write_text(source)
            ok &= run(label, [sys.executable, str(path)])
    for path in scripts:
        ok &= run(str(path.relative_to(ROOT)), [sys.executable, str(path)])
    if not ok:
        print("FAIL: documentation code does not run")
        return 1
    print("all documentation code runs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
