#!/usr/bin/env python
"""Docstring-coverage gate for the public API of ``src/repro``.

Walks every module under ``src/repro`` and counts docstrings on public
definitions: modules, classes, and functions/methods whose name does not
start with ``_`` (dunders are skipped; ``__init__`` inherits its class's
contract).  Nested definitions inside functions are ignored — they are
implementation detail, not API.

Exit status is nonzero when coverage drops below the committed floor, so
CI fails on any change that adds undocumented public surface::

    python tools/check_docstrings.py            # gate against the floor
    python tools/check_docstrings.py --list     # show undocumented defs
    python tools/check_docstrings.py --floor 95 # override the floor

The floor is deliberately a measured baseline, not 100%: it ratchets —
raise it when coverage rises, never lower it.
"""

from __future__ import annotations

import argparse
import ast
import pathlib
import sys

#: Committed coverage floor (percent).  Ratchet upward only.
FLOOR = 100.0

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def public_defs(tree: ast.Module, module: str) -> list[tuple[str, bool]]:
    """``(qualified_name, has_docstring)`` for the module's public defs."""
    out = [(module, ast.get_docstring(tree) is not None)]

    def visit(node: ast.AST, prefix: str, inside_class: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if child.name.startswith("_"):
                    continue
                qual = f"{prefix}.{child.name}"
                out.append((qual, ast.get_docstring(child) is not None))
                visit(child, qual, inside_class=True)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if child.name.startswith("_"):
                    continue
                qual = f"{prefix}.{child.name}"
                # Trivial property/abstract stubs still need one line of
                # intent; only ellipsis-only overloads are exempt.
                out.append((qual, ast.get_docstring(child) is not None))
                # Do not descend: nested defs are implementation detail.

    visit(tree, module, inside_class=False)
    return out


def scan() -> list[tuple[str, bool]]:
    """Every public definition under ``src/repro`` with its doc status."""
    results: list[tuple[str, bool]] = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC.parent)
        module = ".".join(rel.with_suffix("").parts)
        if module.endswith(".__init__"):
            module = module[: -len(".__init__")]
        tree = ast.parse(path.read_text(), filename=str(path))
        results.extend(public_defs(tree, module))
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--floor", type=float, default=FLOOR,
                        help=f"minimum coverage percent (default {FLOOR})")
    parser.add_argument("--list", action="store_true",
                        help="list undocumented public definitions")
    args = parser.parse_args(argv)

    defs = scan()
    missing = [name for name, ok in defs if not ok]
    covered = len(defs) - len(missing)
    pct = 100.0 * covered / len(defs) if defs else 100.0
    print(f"docstring coverage: {covered}/{len(defs)} public defs "
          f"({pct:.1f}%, floor {args.floor:.1f}%)")
    if args.list or pct < args.floor:
        for name in missing:
            print(f"  missing: {name}")
    if pct < args.floor:
        print("FAIL: coverage below floor")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
