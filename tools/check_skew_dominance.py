#!/usr/bin/env python
"""Strict error-dominance gate for the skew figure's row table.

Reads a ``--rows`` JSON written by ``python -m repro.bench skew`` and
asserts the figure's headline claims cell by cell:

* **Identity at zero skew** — the partitioned standalone row must equal
  the parent's row bit for bit (modulo the ``partition_*`` accounting
  columns), and nothing may have been promoted.
* **Error dominance everywhere** — at every ``(key_skew, disorder)``
  cell the partitioned join's error must be no worse than the parent's,
  in *both* disorder regimes.  (The pytest shape test only asserts the
  strict claim under low disorder because its fixture runs at a tiny
  scale; this gate runs at the baseline-gated scale where the claim is
  strict.)
* **Hot keys at high skew** — the top-skew cells must actually promote,
  otherwise the dominance check is vacuous.

Exit status is nonzero with a per-cell report on any violation::

    python tools/check_skew_dominance.py skew_rows_serial.json
"""

from __future__ import annotations

import argparse
import json
import sys

PARENT = "PECJ-aema"
PARTITIONED = "PECJ-part-aema"


def load_rows(path: str) -> list[dict]:
    """The standalone-method rows of a ``bench skew --rows`` file."""
    with open(path) as fh:
        data = json.load(fh)
    rows = data["skew"] if isinstance(data, dict) else data
    return [r for r in rows if r.get("method") in (PARENT, PARTITIONED)]


def check(rows: list[dict]) -> list[str]:
    """Every violated claim, one human-readable line each."""
    cells: dict[tuple[float, str], dict[str, dict]] = {}
    for row in rows:
        cells.setdefault((row["key_skew"], row["disorder"]), {})[row["method"]] = row

    problems = []
    promoted_at_top = False
    for (skew, disorder), pair in sorted(cells.items()):
        if set(pair) != {PARENT, PARTITIONED}:
            problems.append(f"skew={skew} {disorder}: missing method rows {set(pair)}")
            continue
        base, part = pair[PARENT], pair[PARTITIONED]
        if part["error"] > base["error"] + 1e-12:
            problems.append(
                f"skew={skew} {disorder}: partitioned error {part['error']:.6f} "
                f"> parent {base['error']:.6f}"
            )
        if skew == 0.0:
            drop = {"method"} | {k for k in part if k.startswith("partition_")}
            if {k: v for k, v in base.items() if k not in drop} != {
                k: v for k, v in part.items() if k not in drop
            }:
                problems.append(f"skew=0.0 {disorder}: rows not bit-identical")
            if part.get("partition_hot_keys", 0.0) != 0.0:
                problems.append(f"skew=0.0 {disorder}: promoted on uniform traffic")
        if skew >= 1.1 and part.get("partition_hot_keys", 0.0) >= 1.0:
            promoted_at_top = True
    if not promoted_at_top:
        problems.append("no hot keys promoted at skew >= 1.1 — dominance is vacuous")
    return problems


def main() -> int:
    """CLI entry point: gate the given rows file, print violations."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("rows", help="rows JSON from `python -m repro.bench skew`")
    args = parser.parse_args()

    rows = load_rows(args.rows)
    if not rows:
        print(f"{args.rows}: no standalone skew rows found", file=sys.stderr)
        return 2
    problems = check(rows)
    if problems:
        print(f"{args.rows}: {len(problems)} skew-dominance violation(s):")
        for line in problems:
            print(f"  - {line}")
        return 1
    cells = len({(r['key_skew'], r['disorder']) for r in rows})
    print(f"{args.rows}: partitioned error dominates in all {cells} cells.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
