"""Online decision augmentation over a quote/trade join.

The paper's motivating OLDA scenario: a banking application joins quote
and trade streams within tight windows to feed feature computation, under
an end-to-end budget of ~20ms.  This script sweeps the emission cutoff
within that budget and shows the accuracy each method can afford — with
buffering (WMJ/KSJ), accuracy is capped by how long you can wait; with
PECJ the budget buys far more.

Run:  python examples/financial_quotes.py
"""

from repro.bench.reporting import format_table
from repro.core import PECJoin
from repro.joins import AggKind, WatermarkJoin, run_operator
from repro.streams import ExponentialDelay, make_dataset, make_disordered_arrays

LATENCY_BUDGET_MS = 20.0
WINDOW_MS = 10.0


def main() -> None:
    # Quotes (R) and trades (S) at 100 Ktuples/s each; network delays are
    # exponential with stragglers up to 18ms — no cutoff inside the 20ms
    # budget can see a complete window.
    arrays = make_disordered_arrays(
        dataset=make_dataset("stock"),
        delay_model=ExponentialDelay(mean=4.0, max_delay=18.0),
        duration_ms=4000.0,
        rate_r=100.0,
        rate_s=100.0,
        seed=2024,
    )

    rows = []
    for omega in (6.0, 8.0, 10.0, 14.0, 18.0):
        for operator in (
            WatermarkJoin(AggKind.SUM),
            PECJoin(AggKind.SUM, backend="aema"),
        ):
            result = run_operator(
                operator,
                arrays,
                window_length=WINDOW_MS,
                omega=omega,
                t_start=500.0,
                t_end=3900.0,
                warmup_windows=50,
            )
            rows.append(
                {
                    "omega_ms": omega,
                    "method": operator.name,
                    "rel_error": result.mean_error,
                    "p95_latency_ms": result.p95_latency,
                    "within_budget": "yes"
                    if result.p95_latency <= LATENCY_BUDGET_MS
                    else "NO",
                }
            )

    print(
        format_table(
            rows,
            title=f"JOIN-SUM(quote_price) per {WINDOW_MS:.0f}ms window, "
            f"budget {LATENCY_BUDGET_MS:.0f}ms",
        )
    )

    wmj_best = min(
        (r for r in rows if r["method"] == "WMJ" and r["within_budget"] == "yes"),
        key=lambda r: r["rel_error"],
    )
    pecj_best = min(
        (r for r in rows if r["method"].startswith("PECJ") and r["within_budget"] == "yes"),
        key=lambda r: r["rel_error"],
    )
    print(
        f"\nBest error within the {LATENCY_BUDGET_MS:.0f}ms budget:\n"
        f"  buffering (WMJ):  {wmj_best['rel_error']:.1%} at omega = {wmj_best['omega_ms']}ms\n"
        f"  proactive (PECJ): {pecj_best['rel_error']:.1%} at omega = {pecj_best['omega_ms']}ms"
    )


if __name__ == "__main__":
    main()
