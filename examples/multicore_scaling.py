"""Integrating PECJ into a multi-threaded join engine.

Reproduces the flavour of the paper's Section 6.6: the simulated
AllianceDB-style engine runs a lazy Parallel Radix Join and an eager
Symmetric Hash Join across a thread sweep, with and without PECJ
compensation.  Lazy scales better; PECJ rides along at a fraction of the
error without disturbing latency or throughput.

Run:  python examples/multicore_scaling.py   (takes ~1 minute)
"""

from repro.bench.reporting import format_table
from repro.engine import ParallelJoinEngine
from repro.joins import AggKind
from repro.streams import UniformDelay, make_dataset, make_disordered_arrays


def main() -> None:
    # 800 Ktuples/s per stream: enough to overload small thread counts.
    arrays = make_disordered_arrays(
        dataset=make_dataset("stock"),
        delay_model=UniformDelay(5.0),
        duration_ms=1500.0,
        rate_r=800.0,
        rate_s=800.0,
        seed=31,
    )

    rows = []
    for threads in (1, 4, 16):
        for algorithm in ("prj", "shj"):
            for pecj in (False, True):
                engine = ParallelJoinEngine(
                    algorithm,
                    threads=threads,
                    agg=AggKind.COUNT,
                    pecj=pecj,
                    omega=10.0,
                )
                result = engine.run(
                    arrays, t_start=100.0, t_end=1450.0, warmup_windows=40
                )
                rows.append(
                    {
                        "threads": threads,
                        "method": engine.name,
                        "rel_error": result.mean_error,
                        "p95_latency_ms": result.p95_latency,
                        "throughput_ktps": result.throughput_ktps,
                    }
                )

    print(format_table(rows, title="Engine scaling at 2 x 800 Ktuples/s"))
    print(
        "\nReading the table: the lazy PRJ family recovers from overload with\n"
        "a handful of threads while the eager SHJ family needs many more;\n"
        "the PECJ- variants track their host algorithm's latency and\n"
        "throughput while cutting the disorder-induced error.\n"
        "\nNote PECJ-SHJ at low thread counts: an overloaded eager engine\n"
        "starves PECJ of observations entirely (error -> 1, nothing emitted\n"
        "in time) — the extreme form of the paper's finding that eager\n"
        "disorder handling can mislead PECJ under heavy load, while the\n"
        "lazy integration keeps compensating because its batches still\n"
        "freeze the right data."
    )


if __name__ == "__main__":
    main()
