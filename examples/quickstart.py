"""Quickstart: proactive error compensation in 40 lines.

Builds a disordered stream pair, runs the WMJ baseline and PECJ side by
side, and prints the accuracy/latency comparison — the paper's Fig. 6
story in miniature.

Run:  python examples/quickstart.py
"""

from repro.bench.reporting import format_table
from repro.core import PECJoin
from repro.joins import AggKind, BatchArrays, KSlackJoin, WatermarkJoin, run_operator
from repro.streams import UniformDelay, make_dataset, make_disordered_arrays


def main() -> None:
    # Two 100 Ktuples/s streams over 3 seconds, disordered by up to 5 ms.
    arrays = make_disordered_arrays(
        dataset=make_dataset("stock"),
        delay_model=UniformDelay(5.0),
        duration_ms=3000.0,
        rate_r=100.0,
        rate_s=100.0,
        seed=7,
    )

    rows = []
    for omega in (7.0, 10.0, 12.0):
        for operator in (
            WatermarkJoin(AggKind.COUNT),
            KSlackJoin(AggKind.COUNT),
            PECJoin(AggKind.COUNT, backend="aema"),
        ):
            result = run_operator(
                operator,
                arrays,
                window_length=10.0,
                omega=omega,
                t_start=500.0,
                t_end=2900.0,
                warmup_windows=50,
            )
            rows.append(
                {
                    "omega_ms": omega,
                    "method": operator.name,
                    "rel_error": result.mean_error,
                    "p95_latency_ms": result.p95_latency,
                }
            )

    print(format_table(rows, title="JOIN-COUNT over 10ms windows, Delta = 5ms"))
    print(
        "\nPECJ answers at the same cutoff with a fraction of the error: it\n"
        "estimates how many tuples are still in flight (and what they would\n"
        "join to) instead of pretending the window is complete."
    )


if __name__ == "__main__":
    main()
