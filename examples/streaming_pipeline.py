"""Driving the push-based streaming API.

Everything else in ``examples/`` replays pre-built batches through the
experiment runner; this script shows the deployable form: a
:class:`~repro.streaming.StreamingPECJ` consuming one tuple at a time in
arrival order, emitting compensated window outputs at each cutoff, and
scoring itself retroactively once windows finalize.

Run:  python examples/streaming_pipeline.py
"""

from repro.joins.arrays import AggKind
from repro.streaming import StreamingPECJ, StreamingWMJ
from repro.streams import UniformDelay, make_dataset, make_disordered_pair


def main() -> None:
    merged, _, _ = make_disordered_pair(
        make_dataset("stock"),
        UniformDelay(5.0),
        duration_ms=2000.0,
        rate_r=50.0,
        rate_s=50.0,
        seed=17,
    )
    arrival_ordered = merged.in_arrival_order()

    pecj = StreamingPECJ(window_length=10.0, omega=10.0, agg=AggKind.COUNT)
    wmj = StreamingWMJ(window_length=10.0, omega=10.0, agg=AggKind.COUNT)

    print("First few emissions as the stream flows in:")
    shown = 0
    for t in arrival_ordered:
        wmj.push(t)
        for emission in pecj.push(t):
            if 300.0 <= emission.window_start and shown < 5:
                print(
                    f"  window [{emission.window_start:.0f}, "
                    f"{emission.window_end:.0f}) -> O = {emission.value:8.1f}  "
                    f"(emitted at t = {emission.emit_time:.1f}ms, "
                    f"{emission.observed} tuples observed)"
                )
                shown += 1
    pecj.finish()
    wmj.finish()

    skip = 40  # estimator warm-up
    pecj_scored = pecj.scored[skip:]
    wmj_scored = wmj.scored[skip:]
    pecj_err = sum(s.error for s in pecj_scored) / len(pecj_scored)
    wmj_err = sum(s.error for s in wmj_scored) / len(wmj_scored)

    print(f"\nWindows emitted: {len(pecj.scored)}; live state held at any "
          f"time: <= {pecj.live_windows + 3} windows (bounded by the delay horizon)")
    print(f"Steady-state relative error: StreamingWMJ {wmj_err:.1%}, "
          f"StreamingPECJ {pecj_err:.1%}")
    print("\nEach emission was produced at its cutoff from whatever had")
    print("arrived, with the unobserved remainder filled in from the")
    print("posterior — no buffering beyond omega, no second pass.")


if __name__ == "__main__":
    main()
