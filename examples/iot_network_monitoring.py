"""Sensor-network join across a congested wide-area network.

The paper's Q3 regime: events reach the analytics site through multi-hop
routes whose congestion comes and goes, so delays swing between ~150ms
and ~700ms (Delta = 1s).  A stationary completeness model — the
analytical instantiation's core assumption — is wrong for every
individual window, and the learning-based backend's delay-shape reading
is what keeps compensation on target.

Run:  python examples/iot_network_monitoring.py   (takes ~1 minute)
"""

from repro.bench.reporting import format_table
from repro.core import PECJoin
from repro.joins import AggKind, WatermarkJoin, run_operator
from repro.streams import RegimeSwitchingDelay, make_dataset, make_disordered_arrays


def main() -> None:
    arrays = make_disordered_arrays(
        dataset=make_dataset("logistics"),
        delay_model=RegimeSwitchingDelay(
            calm_mean=150.0,
            congested_mean=700.0,
            regime_length=700.0,
            max_delay=1000.0,
        ),
        duration_ms=10000.0,
        rate_r=100.0,
        rate_s=100.0,
        seed=99,
    )

    rows = []
    for operator in (
        WatermarkJoin(AggKind.COUNT),
        PECJoin(AggKind.COUNT, backend="aema"),
        PECJoin(AggKind.COUNT, backend="mlp"),
    ):
        result = run_operator(
            operator,
            arrays,
            window_length=10.0,
            omega=300.0,
            t_start=100.0,
            t_end=9500.0,
            warmup_windows=450,
        )
        rows.append(
            {
                "method": operator.name,
                "rel_error": result.mean_error,
                "p95_latency_ms": result.p95_latency,
            }
        )

    print(
        format_table(
            rows,
            title="Shipment-scan join, Delta = 1s regime-switching delays, omega = 300ms",
        )
    )
    print(
        "\nThe analytical backend applies the long-run average completeness\n"
        "to every window, over-compensating in calm spells and under-\n"
        "compensating in congested ones.  The learning-based backend reads\n"
        "the current window's observed delay shape, infers which regime it\n"
        "is in, and rescales the correction — at ~90ms of inference latency\n"
        "that can be hidden by shifting omega (see benchmarks/bench_fig7.py)."
    )


if __name__ == "__main__":
    main()
