"""Partition-adaptive skew handling on zipfian traffic.

Three vignettes of DESIGN.md §17 (`repro.joins.partitioned` and the
engine's skew routing):

1. **Standalone operator** — `PartitionedPECJoin` vs plain `PECJoin`
   across a key-skew sweep.  At zero skew nothing promotes and the two
   are bit-identical; once a few keys dominate, per-key delay profiles
   and rate posteriors cut the error.
2. **Drift** — the stream's hot keys flip identity mid-run.  The
   dual-signal detector notices (the hot-partition hit rate collapses
   even though the hottest-key *share* is unchanged), flushes the
   sketch, and re-partitions onto the new regime.
3. **Engine routing** — at saturating rates, hash routing sends the hot
   key's flood to one worker; `partitioning="skew"` isolates it and
   both throughput and accuracy recover.

Run:  python examples/skewed_traffic.py   (takes ~30 seconds)
"""

import numpy as np

from repro.bench.reporting import format_table
from repro.core import PECJoin
from repro.engine import ParallelJoinEngine
from repro.joins import AggKind, BatchArrays, PartitionedPECJoin, run_operator
from repro.streams import UniformDelay, make_dataset, make_disordered_arrays


def skewed_arrays(skew, seed=7, duration=2000.0, rate=60.0, num_keys=64):
    """A micro-workload stream pair with zipf(``skew``) key traffic."""
    return make_disordered_arrays(
        make_dataset("micro", num_keys=num_keys, key_skew=skew),
        UniformDelay(6.0),
        duration_ms=duration,
        rate_r=rate,
        rate_s=rate,
        seed=seed,
    )


def standalone_sweep() -> None:
    """PECJoin vs PartitionedPECJoin across key skew."""
    rows = []
    for skew in (0.0, 0.8, 1.4):
        arrays = skewed_arrays(skew)
        for op in (PECJoin(AggKind.COUNT), PartitionedPECJoin(AggKind.COUNT)):
            result = run_operator(
                op, arrays, window_length=10.0, omega=10.0,
                t_start=50.0, t_end=1950.0, warmup_windows=30,
            )
            row = {
                "key_skew": skew,
                "method": op.name,
                "rel_error": result.mean_error,
            }
            if isinstance(op, PartitionedPECJoin):
                summary = op.partition_summary()
                row["hot_keys"] = summary["partition_hot_keys"]
                row["hot_hit_rate"] = summary["partition_hot_hit_rate"]
            rows.append(row)
    print(format_table(rows, title="Standalone: error vs key skew"))
    print(
        "\nAt skew 0 the partitioned operator promoted nothing and emitted\n"
        "the parent's values bit for bit; at high skew the promoted keys\n"
        "carry most of the traffic and per-key estimation pays.\n"
    )


def drift_demo() -> None:
    """Hot-key identity flip mid-stream: detect, flush, re-partition."""
    a = skewed_arrays(1.4, seed=11)
    b = skewed_arrays(1.4, seed=11)
    # Second half: same skew, same rates — but every key relabelled
    # (63 - k), so the hot set changes identity without the hottest-key
    # share moving at all.
    half = 2000.0
    merged = BatchArrays(
        event=np.concatenate([a.event, b.event + half]),
        arrival=np.concatenate([a.arrival, b.arrival + half]),
        key=np.concatenate([a.key, 63 - b.key]),
        payload=np.concatenate([a.payload, b.payload]),
        is_r=np.concatenate([a.is_r, b.is_r]),
    )
    op = PartitionedPECJoin(AggKind.COUNT, repartition_interval=2)
    run_operator(
        op, merged, window_length=10.0, omega=10.0,
        t_start=50.0, t_end=2 * half - 50.0, warmup_windows=30,
    )
    summary = op.partition_summary()
    print(
        f"Drift: shift_repartitions={summary['partition_shift_repartitions']:.0f} "
        f"promotions={summary['partition_promotions']:.0f} "
        f"demotions={summary['partition_demotions']:.0f} "
        f"(hot set now {sorted(op.partitions.hot)})"
    )
    print(
        "The share-based signal alone would never fire here — the hit-rate\n"
        "collapse is what exposes an identity flip at constant skew.\n"
    )


def engine_routing() -> None:
    """Hash vs skew routing in the simulated SHJ engine at high skew."""
    arrays = make_disordered_arrays(
        make_dataset("micro", num_keys=256, key_skew=1.4),
        UniformDelay(5.0),
        duration_ms=800.0,
        rate_r=400.0,
        rate_s=400.0,
        seed=21,
    )
    rows = []
    for partitioning in ("hash", "skew"):
        engine = ParallelJoinEngine(
            "shj", threads=4, agg=AggKind.COUNT, pecj=True, omega=10.0,
            partitioning=partitioning,
        )
        result = engine.run(arrays, t_start=100.0, t_end=750.0, warmup_windows=20)
        rows.append(
            {
                "method": engine.name,
                "rel_error": result.mean_error,
                "p95_latency_ms": result.p95_latency,
                "throughput_ktps": result.throughput_ktps,
            }
        )
    print(format_table(rows, title="Engine: SHJ routing at skew 1.4, 2 x 400 Ktps"))
    print(
        "\nHash routing saturates the hot key's worker: throughput drops and\n"
        "— because completion times feed the estimator — error explodes.\n"
        "Skew routing isolates the hot key and recovers both."
    )


def main() -> None:
    """Run all three vignettes."""
    standalone_sweep()
    drift_demo()
    engine_routing()


if __name__ == "__main__":
    main()
