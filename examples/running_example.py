"""The paper's running example (Fig. 3), executed step by step.

Six tuples per stream in a 6ms window; R4 and S1 are still in flight at
the cutoff (omega = 5.1ms).  The script prints the observed statistics,
the posterior estimates, and the compensated outputs for JOIN-COUNT and
JOIN-SUM — matching the numbers in Section 3.2 of the paper.

Run:  python examples/running_example.py
"""

from repro.core.compensation import compensate, product_interval
from repro.joins.arrays import AggKind, BatchArrays
from repro.streams.tuples import Side, StreamBatch, StreamTuple

OMEGA = 5.1
WINDOW = (0.0, 6.0)

# 'Key, Payload, Event time, Arrival time' per Fig. 3(a).  R4 and S1
# arrive after the cutoff (late).
R_ROWS = [
    ("A", 4.0, 0.5, 0.6),
    ("B", 6.0, 1.5, 1.6),
    ("C", 9.0, 2.5, 2.6),
    ("D", 7.0, 3.5, 3.6),
    ("A", 5.0, 4.0, 9.0),  # late!  (joins the observed S_A pair)
    ("F", 8.0, 4.5, 4.6),
]
S_ROWS = [
    ("B", 1.0, 0.6, 9.5),  # late!  (joins the observed R_B)
    ("A", 2.0, 1.2, 1.3),
    ("A", 3.0, 2.2, 2.3),
    ("B", 1.5, 3.2, 3.3),
    ("B", 2.5, 4.2, 4.3),
    ("H", 0.5, 5.0, 5.05),
]


def build_arrays() -> BatchArrays:
    key_ids = {k: i for i, k in enumerate("ABCDEFGH")}
    tuples = [
        StreamTuple(key_ids[k], v, e, a, Side.R, i)
        for i, (k, v, e, a) in enumerate(R_ROWS)
    ] + [
        StreamTuple(key_ids[k], v, e, a, Side.S, i)
        for i, (k, v, e, a) in enumerate(S_ROWS)
    ]
    return BatchArrays.from_batch(StreamBatch(tuples))


def main() -> None:
    arrays = build_arrays()
    observed = arrays.aggregate(*WINDOW, OMEGA)
    truth = arrays.aggregate(*WINDOW, None)

    print(f"Observed by omega = {OMEGA}ms:")
    print(f"  n_R = {observed.n_r}, n_S = {observed.n_s}")
    print(f"  matches = {observed.matches:.0f}  (2 under key A, 2 under key B)")
    print(f"  sigma   = {observed.selectivity:.3f}  (= 4/25)")
    print(f"  JOIN-SUM(R.v) over observed = {observed.sum_r:.0f}, alpha_R = {observed.alpha_r:.0f}")

    # PECJ's PDA step concludes n_R and n_S follow ~N(6, 0.2): use E = 6.
    n_hat = 6.0
    count = compensate(AggKind.COUNT, n_hat, n_hat, observed.selectivity)
    total = compensate(
        AggKind.SUM, n_hat, n_hat, observed.selectivity, observed.alpha_r
    )
    print("\nProactively compensated (as if R4 and S1 had arrived):")
    print(f"  JOIN-COUNT: O = sigma * n_S * n_R = {count.value:.2f}")
    print(f"  JOIN-SUM:   O = sigma * n_S * n_R * alpha_R = {total.value:.2f}")

    lo, hi = product_interval([observed.selectivity, n_hat, n_hat], [0.02, 0.45, 0.45])
    print(f"  95% credible interval for the count: [{lo:.2f}, {hi:.2f}]")

    print("\nGround truth once the stragglers arrive:")
    print(f"  n_R = {truth.n_r}, n_S = {truth.n_s}, JOIN-COUNT = {truth.matches:.0f}")
    uncompensated_err = abs(observed.matches - truth.matches) / truth.matches
    compensated_err = abs(count.value - truth.matches) / truth.matches
    print(
        f"  error without compensation: {uncompensated_err:.1%}; "
        f"with compensation: {compensated_err:.1%}"
    )


if __name__ == "__main__":
    main()
